//! The regression harness behind `repro --check`.
//!
//! A check compares a freshly measured [`BenchReport`] against the committed
//! baseline JSON for the same experiment. Only the `rows` subtree is
//! compared — provenance carries device constants such as `peak_gbps` that
//! are configuration, not measurement. The simulator is deterministic, so a
//! clean tree reproduces the baseline exactly; the tolerance exists for the
//! day the cost model legitimately moves and for real-hardware backends.

use ipt_obs::{
    compare_metrics, compare_slo_metrics, current_git_rev, extract_metrics, extract_slo_metrics,
    extract_wall_metrics, BenchReport, Metric, Provenance, Regression, SCHEMA_VERSION,
};
use serde::{Serialize, Value};

/// Default relative tolerance for `repro --check` (10 %).
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Relative tolerance for host wall-clock (`wall_*`) metrics (60 %).
///
/// Wall time measures the real machine the harness ran on, not the
/// simulated device, so shared CI runners can jitter by tens of percent;
/// the gate only exists to catch the parallel engine collapsing back to
/// serial speed, which loses far more than this.
pub const DEFAULT_WALL_TOLERANCE: f64 = 0.60;

/// Wrap experiment rows in the versioned envelope with this run's
/// provenance (direct heuristic planning).
pub fn make_report(
    experiment: &str,
    device: &gpu_sim::DeviceSpec,
    scale: &str,
    rows: &impl Serialize,
) -> BenchReport {
    make_report_scheme(experiment, device, scale, "heuristic", rows)
}

/// [`make_report`] with explicit planning-scheme provenance (e.g.
/// `"plan-cache"` for the serving layer, or a short-circuit scheme name).
pub fn make_report_scheme(
    experiment: &str,
    device: &gpu_sim::DeviceSpec,
    scale: &str,
    scheme: &str,
    rows: &impl Serialize,
) -> BenchReport {
    make_report_engine(experiment, device, scale, scheme, "serial", 1, rows)
}

/// [`make_report_scheme`] with explicit simulation-engine provenance, for
/// experiments that measure host wall-clock (`wall_*`) numbers: those are
/// only comparable between runs of the same engine and thread count.
pub fn make_report_engine(
    experiment: &str,
    device: &gpu_sim::DeviceSpec,
    scale: &str,
    scheme: &str,
    engine: &str,
    sim_threads: usize,
    rows: &impl Serialize,
) -> BenchReport {
    BenchReport::new(
        experiment,
        Provenance {
            git_rev: current_git_rev(),
            device: device.to_value(),
            seed: 0,
            scale: scale.to_string(),
            schedule: "round-robin".to_string(),
            scheme: scheme.to_string(),
            engine: engine.to_string(),
            sim_threads: sim_threads as u64,
        },
        rows,
    )
}

/// The result of checking one experiment.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Experiment name.
    pub experiment: String,
    /// How many baseline metrics were compared.
    pub metrics_compared: usize,
    /// How many host wall-clock (`wall_*`) metrics were compared (0 when
    /// the baseline has none, or its engine/thread provenance differs).
    pub wall_compared: usize,
    /// How many lower-is-better SLO (`slo_*`) metrics were compared (0
    /// when the baseline has none).
    pub slo_compared: usize,
    /// Every metric that regressed past the tolerance.
    pub regressions: Vec<Regression>,
}

impl CheckOutcome {
    /// Did the experiment pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare a fresh report against the committed baseline JSON.
///
/// `inject_slowdown_pct` scales every fresh throughput metric down by that
/// percentage before comparing — the self-test hook proving the harness
/// actually fails when performance drops (a harness that cannot fail
/// verifies nothing).
///
/// # Errors
///
/// Returns a description when the baseline is unparsable, unversioned, has
/// a mismatched schema version, names a different experiment, or was
/// generated on different simulated hardware.
pub fn check_report(
    baseline_json: &str,
    fresh: &BenchReport,
    tolerance: f64,
    inject_slowdown_pct: f64,
) -> Result<CheckOutcome, String> {
    let baseline = serde_json::from_str(baseline_json)
        .map_err(|e| format!("baseline for {:?} is not valid JSON: {e:?}", fresh.experiment))?;
    let version = baseline.get("schema_version").and_then(Value::as_u64);
    if version != Some(SCHEMA_VERSION) {
        return Err(format!(
            "baseline for {:?} has schema_version {version:?}, expected {SCHEMA_VERSION}; \
             regenerate with `repro all --json bench_out`",
            fresh.experiment
        ));
    }
    let name = baseline.get("experiment").and_then(Value::as_str);
    if name != Some(&fresh.experiment) {
        return Err(format!(
            "baseline names experiment {name:?}, fresh run is {:?}",
            fresh.experiment
        ));
    }
    let base_dev = baseline
        .get("provenance")
        .and_then(|p| p.get("device"))
        .and_then(|d| d.get("name"))
        .and_then(Value::as_str);
    let fresh_dev = fresh.provenance.device.get("name").and_then(Value::as_str);
    if base_dev != fresh_dev {
        return Err(format!(
            "baseline for {:?} was generated on {base_dev:?}, this run simulates {fresh_dev:?}",
            fresh.experiment
        ));
    }

    let base_rows = baseline
        .get("rows")
        .ok_or_else(|| format!("baseline for {:?} has no rows", fresh.experiment))?;
    let base_metrics = extract_metrics(base_rows);
    let mut fresh_metrics = extract_metrics(&fresh.rows);
    if inject_slowdown_pct != 0.0 {
        let factor = 1.0 - inject_slowdown_pct / 100.0;
        for m in &mut fresh_metrics {
            m.value *= factor;
        }
    }
    let mut regressions = compare_metrics(&base_metrics, &fresh_metrics, tolerance);

    // Host wall-clock metrics gate separately, with the wide
    // [`DEFAULT_WALL_TOLERANCE`], and only when the baseline was produced
    // by the same engine with the same thread count — a 1-core laptop
    // baseline must never fail (or vacuously pass) a 4-core CI run.
    let base_prov = baseline.get("provenance");
    let wall_comparable = base_prov
        .and_then(|p| p.get("engine"))
        .and_then(Value::as_str)
        .is_some_and(|e| e == fresh.provenance.engine)
        && base_prov
            .and_then(|p| p.get("sim_threads"))
            .and_then(Value::as_u64)
            .is_some_and(|t| t == fresh.provenance.sim_threads);
    let base_wall = if wall_comparable { extract_wall_metrics(base_rows) } else { Vec::new() };
    if !base_wall.is_empty() {
        let mut fresh_wall = extract_wall_metrics(&fresh.rows);
        if inject_slowdown_pct != 0.0 {
            let factor = 1.0 - inject_slowdown_pct / 100.0;
            for m in &mut fresh_wall {
                m.value *= factor;
            }
        }
        regressions.extend(compare_metrics(&base_wall, &fresh_wall, DEFAULT_WALL_TOLERANCE));
    }

    // SLO metrics (`slo_*`: queue-wait percentiles, shed/reject rates)
    // gate in the opposite direction — lower is better, a *rise* past the
    // tolerance regresses. The slowdown self-test hook accordingly scales
    // them up.
    let base_slo = extract_slo_metrics(base_rows);
    if !base_slo.is_empty() {
        let mut fresh_slo = extract_slo_metrics(&fresh.rows);
        if inject_slowdown_pct != 0.0 {
            let factor = 1.0 / (1.0 - inject_slowdown_pct / 100.0);
            for m in &mut fresh_slo {
                m.value *= factor;
            }
        }
        regressions.extend(compare_slo_metrics(&base_slo, &fresh_slo, tolerance));
    }

    Ok(CheckOutcome {
        experiment: fresh.experiment.clone(),
        metrics_compared: base_metrics.len(),
        wall_compared: base_wall.len(),
        slo_compared: base_slo.len(),
        regressions,
    })
}

/// Extracted fresh metrics of a report's rows (diagnostics / tests).
#[must_use]
pub fn report_metrics(report: &BenchReport) -> Vec<Metric> {
    extract_metrics(&report.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        input: String,
        gbps: f64,
    }

    fn fresh() -> BenchReport {
        let rows = vec![
            Row { input: "1440x600".into(), gbps: 41.5 },
            Row { input: "2400x360".into(), gbps: 38.2 },
        ];
        make_report("table2", &DeviceSpec::tesla_k20(), "reduced", &rows)
    }

    #[test]
    fn clean_self_comparison_passes() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let out = check_report(&baseline, &rep, DEFAULT_TOLERANCE, 0.0).unwrap();
        assert_eq!(out.metrics_compared, 2);
        assert!(out.passed(), "identical reports must not regress: {:?}", out.regressions);
    }

    #[test]
    fn synthetic_twenty_percent_slowdown_fails() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let out = check_report(&baseline, &rep, DEFAULT_TOLERANCE, 20.0).unwrap();
        assert!(!out.passed(), "a 20% slowdown must trip a 10% tolerance");
        assert_eq!(out.regressions.len(), 2, "every throughput metric slowed down");
        for r in &out.regressions {
            assert!((r.change - (-0.2)).abs() < 1e-9, "{r}");
        }
    }

    #[test]
    fn unversioned_baseline_is_rejected() {
        let err = check_report("[{\"gbps\": 10.0}]", &fresh(), DEFAULT_TOLERANCE, 0.0)
            .unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn device_mismatch_is_rejected() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let other = make_report("table2", &DeviceSpec::hd7750(), "reduced", &Vec::<Row>::new());
        let err = check_report(&baseline, &other, DEFAULT_TOLERANCE, 0.0).unwrap_err();
        assert!(err.contains("simulates"), "{err}");
    }

    #[test]
    fn experiment_mismatch_is_rejected() {
        let rep = fresh();
        let baseline = serde_json::to_string_pretty(&rep).unwrap();
        let other = make_report("fig6", &DeviceSpec::tesla_k20(), "reduced", &Vec::<Row>::new());
        let err = check_report(&baseline, &other, DEFAULT_TOLERANCE, 0.0).unwrap_err();
        assert!(err.contains("experiment"), "{err}");
    }

    #[derive(Serialize)]
    struct WallRow {
        gbps: f64,
        wall_gain_x: f64,
    }

    fn wall_report(gain: f64, engine: &str, threads: usize) -> BenchReport {
        let rows = vec![WallRow { gbps: 40.0, wall_gain_x: gain }];
        make_report_engine(
            "simperf",
            &DeviceSpec::tesla_k20(),
            "reduced",
            "heuristic",
            engine,
            threads,
            &rows,
        )
    }

    #[test]
    fn wall_metrics_gate_with_wide_tolerance() {
        let base = wall_report(3.0, "parallel", 4);
        let baseline = serde_json::to_string_pretty(&base).unwrap();
        // Same engine + threads: wall metrics are compared.
        let out =
            check_report(&baseline, &wall_report(3.0, "parallel", 4), DEFAULT_TOLERANCE, 0.0)
                .unwrap();
        assert_eq!(out.wall_compared, 1);
        assert!(out.passed());
        // A 30% wall slowdown sits inside the 60% wall tolerance.
        let out =
            check_report(&baseline, &wall_report(2.1, "parallel", 4), DEFAULT_TOLERANCE, 0.0)
                .unwrap();
        assert!(out.passed(), "{:?}", out.regressions);
        // Collapsing to serial speed (-70%) trips the gate.
        let out =
            check_report(&baseline, &wall_report(0.9, "parallel", 4), DEFAULT_TOLERANCE, 0.0)
                .unwrap();
        assert!(!out.passed());
        assert_eq!(out.regressions[0].path, "0/wall_gain_x");
    }

    #[test]
    fn wall_metrics_skip_on_engine_or_thread_mismatch() {
        let base = wall_report(3.0, "parallel", 4);
        let baseline = serde_json::to_string_pretty(&base).unwrap();
        for fresh in [wall_report(0.5, "serial", 4), wall_report(0.5, "parallel", 1)] {
            let out = check_report(&baseline, &fresh, DEFAULT_TOLERANCE, 0.0).unwrap();
            assert_eq!(out.wall_compared, 0, "provenance mismatch must skip wall gate");
            assert!(out.passed(), "{:?}", out.regressions);
        }
    }

    #[derive(Serialize)]
    struct SloRow {
        gbps: f64,
        slo_p99_wait_us: f64,
        slo_shed_rate: f64,
    }

    fn slo_report(p99: f64, shed: f64) -> BenchReport {
        let rows = vec![SloRow { gbps: 40.0, slo_p99_wait_us: p99, slo_shed_rate: shed }];
        make_report("soak", &DeviceSpec::tesla_k20(), "reduced", &rows)
    }

    #[test]
    fn slo_metrics_gate_lower_is_better() {
        let baseline = serde_json::to_string_pretty(&slo_report(120.0, 0.02)).unwrap();
        // Identical and improved latency both pass.
        let out = check_report(&baseline, &slo_report(120.0, 0.02), DEFAULT_TOLERANCE, 0.0)
            .unwrap();
        assert_eq!(out.slo_compared, 2);
        assert!(out.passed(), "{:?}", out.regressions);
        let out = check_report(&baseline, &slo_report(80.0, 0.0), DEFAULT_TOLERANCE, 0.0)
            .unwrap();
        assert!(out.passed(), "lower SLO values must pass: {:?}", out.regressions);
        // A 20% latency rise trips the 10% tolerance.
        let out = check_report(&baseline, &slo_report(144.0, 0.02), DEFAULT_TOLERANCE, 0.0)
            .unwrap();
        assert!(!out.passed(), "p99 rise must regress");
        assert!(out.regressions[0].path.ends_with("slo_p99_wait_us"));
        // The slowdown self-test hook inflates SLO values, so the harness
        // can prove it fails on a degraded fleet.
        let out = check_report(&baseline, &slo_report(120.0, 0.02), DEFAULT_TOLERANCE, 20.0)
            .unwrap();
        assert!(!out.passed(), "injected 20% degradation must fail the SLO gate");
    }

    #[test]
    fn provenance_device_constants_are_not_metrics() {
        // DeviceSpec carries `peak_gbps`/`bandwidth_gbps`; they must not be
        // compared as measurements.
        let rep = fresh();
        let paths: Vec<String> = report_metrics(&rep).into_iter().map(|m| m.path).collect();
        assert_eq!(paths, vec!["0/gbps", "1/gbps"]);
    }
}
