//! One module per table/figure of the paper's evaluation (§7).
//!
//! Every experiment returns serialisable rows plus a rendered text table,
//! so the `repro` binary can both print and archive results. The mapping
//! from experiment to paper artefact is in DESIGN.md §4.

pub mod ablation;
pub mod asyncq;
pub mod dominance;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod multigpu;
pub mod outofcore;
pub mod phi;
pub mod primes;
pub mod races;
pub mod serve;
pub mod simperf;
pub mod soak;
pub mod sweep010;
pub mod sweep100;
pub mod table2;
pub mod table3;
pub mod telemetry;
pub mod tilesize;
pub mod trace;

/// Render a uniform text table: header + rows of equal arity.
#[must_use]
pub fn text_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_renders() {
        let t = super::text_table(
            "demo",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20000".into()]],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("bbbb"));
        assert!(t.lines().count() >= 4);
    }
}
