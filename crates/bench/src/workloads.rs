//! Shared workload definitions for the experiment harness.

use gpu_sim::DeviceSpec;
use serde::Serialize;

/// Execution scale: the paper's exact sizes, or a 1/5 reduction that keeps
/// the divisor structure (for CI-speed runs — the simulator is
/// cycle-ish-accurate but not fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-exact sizes (7200×1800 …).
    Full,
    /// 1/5-scaled sizes (1440×360 …).
    Reduced,
}

impl Scale {
    /// Parse `--full` / `--reduced`-style flags.
    #[must_use]
    pub fn from_flag(full: bool) -> Self {
        if full {
            Scale::Full
        } else {
            Scale::Reduced
        }
    }
}

/// The six matrix sizes of Table 2 (§7.3), also used in §7.5–§7.7.
#[must_use]
pub fn table2_sizes(scale: Scale) -> Vec<(usize, usize)> {
    let full = [
        (7200, 1800),
        (5100, 2500),
        (4000, 3200),
        (3300, 3900),
        (2500, 5100),
        (1800, 7200),
    ];
    match scale {
        Scale::Full => full.to_vec(),
        Scale::Reduced => full.iter().map(|&(r, c)| (r / 5, c / 5)).collect(),
    }
}

/// One Figure-6 input: a named `M′ × m × n` tile-transposition workload.
///
/// Substitution note (see DESIGN.md): the paper reuses six inputs from Sung
/// et al. \[12\] named after sparse-matrix test problems; their exact
/// dimensions are not recoverable from the paper, so these synthetic
/// configurations span the same tile-width range with the same naming
/// convention (`name (n)` in the figure).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig6Input {
    /// Test-problem-style name.
    pub name: &'static str,
    /// Tile width n (shown in parentheses in the figure).
    pub n: usize,
}

/// The six Figure-6 inputs.
#[must_use]
pub fn fig6_inputs() -> Vec<Fig6Input> {
    vec![
        Fig6Input { name: "bcsstk18", n: 110 },
        Fig6Input { name: "bccstk31", n: 215 },
        Fig6Input { name: "fidapm37", n: 92 },
        Fig6Input { name: "s3dkq4m2", n: 147 },
        Fig6Input { name: "conf5.4-00l8x8", n: 192 },
        Fig6Input { name: "av41092", n: 64 },
    ]
}

/// Number of instances (M′) that fills the device for a given tile, bounded
/// so one experiment stays tractable.
#[must_use]
pub fn fill_instances(m: usize, n: usize, scale: Scale) -> usize {
    let budget_words: usize = match scale {
        Scale::Full => 8_000_000,
        Scale::Reduced => 1_500_000,
    };
    (budget_words / (m * n)).clamp(16, 4096)
}

/// Half-scale Table-2 sizes for the §7.6 asynchronous-execution study: the
/// paper's effect needs transfers (≈15 ms at full scale) to dwarf the fixed
/// per-queue creation cost, which a 1/5 matrix does not; 1/2 keeps the
/// regime while staying simulable.
#[must_use]
pub fn async_sizes(scale: Scale) -> Vec<(usize, usize)> {
    match scale {
        Scale::Full => table2_sizes(Scale::Full),
        Scale::Reduced => table2_sizes(Scale::Full)
            .into_iter()
            .map(|(r, c)| (r / 2, c / 2))
            .collect(),
    }
}

/// Device registry for `--device` flags.
#[must_use]
pub fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name {
        "k20" | "tesla_k20" => Some(DeviceSpec::tesla_k20()),
        "gtx580" | "fermi" => Some(DeviceSpec::gtx580()),
        "hd7750" | "capeverde" | "amd" => Some(DeviceSpec::hd7750()),
        "phi" | "xeon_phi" => Some(DeviceSpec::xeon_phi()),
        _ => None,
    }
}

/// Bytes of an `r × c` single-precision matrix. Exact even past the
/// 32-bit boundary (computed in wide integer arithmetic, not wrapping
/// `usize` products).
#[must_use]
pub fn matrix_bytes(r: usize, c: usize) -> f64 {
    ipt_core::check::bytes_f64(r, c, 4)
}

/// One shape class of the `repro serve` mixed workload:
/// `(rows, cols, elem_bytes)`.
///
/// The mix deliberately spans every planning scheme the serving layer can
/// route: staged divisor-rich shapes (two sizes plus a wide-element f64
/// variant), squares (composite and prime-sided), degenerate vectors
/// (identity short-circuit, both orientations), and coprime prime-dim
/// shapes (the §7.4 limitation the fallback covers).
#[must_use]
pub fn serve_mix(scale: Scale) -> Vec<(usize, usize, usize)> {
    match scale {
        Scale::Full => vec![
            (360, 120, 4),
            (288, 144, 4),
            (120, 120, 4),
            (47, 47, 4),
            (1, 2048, 4),
            (1024, 1, 4),
            (127, 61, 4),
            (251, 13, 4),
            (144, 96, 8),
        ],
        Scale::Reduced => vec![
            (72, 60, 4),
            (96, 72, 4),
            (60, 60, 4),
            (47, 47, 4),
            (1, 512, 4),
            (512, 1, 4),
            (127, 61, 4),
            (251, 13, 4),
            (72, 60, 8),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        let full = table2_sizes(Scale::Full);
        assert_eq!(full.len(), 6);
        assert_eq!(full[0], (7200, 1800));
        assert_eq!(full[5], (1800, 7200));
        // All sizes have the same element count (the paper transposes the
        // same data volume).
        let n0 = full[0].0 * full[0].1;
        for &(r, c) in &full[1..] {
            assert!(r * c >= n0 / 2 && r * c <= n0 * 2);
        }
    }

    #[test]
    fn reduced_keeps_divisibility() {
        for (r, c) in table2_sizes(Scale::Reduced) {
            assert_eq!(r % 4, 0);
            assert_eq!(c % 4, 0);
        }
    }

    #[test]
    fn six_fig6_inputs() {
        let inputs = fig6_inputs();
        assert_eq!(inputs.len(), 6);
        for i in &inputs {
            assert!((16..=256).contains(&i.n));
        }
    }

    #[test]
    fn devices_resolve() {
        assert!(device_by_name("k20").is_some());
        assert!(device_by_name("gtx580").is_some());
        assert!(device_by_name("amd").is_some());
        assert!(device_by_name("phi").is_some());
        assert!(device_by_name("rtx5090").is_none());
    }

    #[test]
    fn fill_instances_bounded() {
        assert!(fill_instances(16, 64, Scale::Reduced) >= 16);
        assert!(fill_instances(64, 256, Scale::Full) <= 4096);
    }
}
