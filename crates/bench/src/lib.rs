//! # ipt-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7) via
//! the `repro` binary; Criterion benches live under `benches/`. The
//! experiment-to-artefact mapping is DESIGN.md §4; measured-vs-paper
//! numbers are archived in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod check;
pub mod common;
pub mod experiments;
pub mod workloads;
