//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--full] [--device NAME] [--json DIR] [--single-stage]
//!       [--check] [--baseline DIR] [--tolerance T] [--inject-slowdown PCT]
//!
//! experiments:
//!   fig6          Figure 6  (spreading & padding, 010!)
//!   sweep010      §7.1      (optimised vs original PTTWAC, 3 GPUs)
//!   sweep100      §7.2      (warp-based vs Sung 100!, 3 GPUs)
//!   fig7          Figure 7  (100! throughput heat map)
//!   table2        Table 2   (3-stage vs 4-stage ± fusion)
//!   tilesize      §7.3      (throughput vs tile size)
//!   dominance     scheme gate (C2R decomposition vs coprime / staged /
//!                 single-stage per shape, incl. shapes where coprime
//!                 cannot launch; plus planner probes over
//!                 7919×104729-class prime shapes — exits 1 if C2R loses
//!                 a contested shape or any probe falls back to coprime
//!                 cycle-following or the single-stage pass)
//!   fig8          Figure 8  (tile scatter + pruning heuristic)
//!   table3        Table 3 / Figure 9 (CPU vs GPU assessment)
//!   async         §7.6      (Q command queues)
//!   phi           §7.7      (Xeon Phi)
//!   primes        extension (coprime decomposition vs prime-dim fallback)
//!   multigpu      extension (multi-GPU scaling, paper §8 future work)
//!   ablation      cost-model ablations (which mechanism drives which result)
//!   serve         extension (batched, plan-cached serving layer: mixed
//!                 1k-request stream, cache hit rate, amortization vs
//!                 per-request autotuning)
//!   soak          robustness gate (sharded serving fleet under a 100k-
//!                 request mixed soak — 1M with `--full`: priority classes,
//!                 bursts, one injected shard crash + warm restart from a
//!                 plan-cache snapshot; exits 1 on any correctness failure
//!                 or a cold cache)
//!   outofcore     robustness + performance gate (out-of-core streaming
//!                 transpose: fault-free overlap efficiency ≥ 70% of the
//!                 bandwidth roofline, plus a 240-run seeded mid-stream
//!                 fault campaign — transfer chaos, kernel aborts, engine
//!                 crash at 40% progress — exits 1 on any data loss or a
//!                 missed efficiency floor; archives the crash-run chunk
//!                 journal next to the JSON)
//!   simperf       engineering (parallel vs serial simulation engine:
//!                 host wall clock per workload — WG-local kernels, the
//!                 three `100!` variants, and the 3-stage pipeline —
//!                 asserted bit-identical; `--min-wall-gain X` fails the
//!                 run below X× aggregate gain, `--min-staged-wall-gain X`
//!                 below X× on the 3-stage pipeline row;
//!                 pin RAYON_NUM_THREADS for reproducible thread counts)
//!   telemetry     observability gate (the 100k soak twice: counters-only
//!                 vs full tracing; aggregates must be bit-identical and
//!                 the streams' wall overhead must stay under
//!                 `--max-overhead-pct`, default 5 — exits 1 otherwise)
//!   trace         observability showcase (traced 3-stage run → Chrome trace
//!                 + Prometheus exposition; written next to the JSON archive)
//!   races         schedule-exploration campaign: seeded PCT sweep
//!                 (`--schedules N --seed S`) + bounded exhaustive pass +
//!                 planted-bug catch; exits 1 on any failing schedule
//!   all           everything above except `races`, `simperf` and
//!                 `telemetry`
//! ```
//!
//! Default scale is 1/5-reduced matrices (minutes); `--full` uses the
//! paper's exact sizes (tens of minutes). `--json DIR` archives each
//! experiment as a versioned `BenchReport` envelope (schema version, git
//! revision, device config, seed, scale) next to the text output.
//!
//! `--check` is the regression harness: after running, each experiment's
//! fresh report is compared against the committed baseline in `--baseline
//! DIR` (default `bench_out`); any throughput metric more than
//! `--tolerance` (default 0.10) below baseline fails the process with exit
//! code 1. `--inject-slowdown PCT` artificially slows the fresh metrics —
//! the self-test proving the harness can fail.

use ipt_bench::check::{
    check_report, make_report_engine, make_report_scheme, CheckOutcome, DEFAULT_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
};
use ipt_bench::experiments as ex;
use ipt_bench::workloads::{device_by_name, Scale};
use ipt_obs::BenchReport;
use serde::Serialize;
use std::io::Write;

struct Args {
    experiment: String,
    scale: Scale,
    device: gpu_sim::DeviceSpec,
    json_dir: Option<String>,
    single_stage: bool,
    include_slow: bool,
    check: bool,
    baseline_dir: String,
    tolerance: f64,
    inject_slowdown_pct: f64,
    schedules: usize,
    seed: u64,
    min_wall_gain: f64,
    min_staged_wall_gain: f64,
    max_overhead_pct: f64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut full = false;
    let mut device = gpu_sim::DeviceSpec::tesla_k20();
    let mut json_dir = None;
    let mut single_stage = false;
    let mut include_slow = false;
    let mut check = false;
    let mut baseline_dir = String::from("bench_out");
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut inject_slowdown_pct = 0.0;
    let mut schedules = 64usize;
    let mut seed = 0xA11CE_u64;
    let mut min_wall_gain = 0.0f64;
    let mut min_staged_wall_gain = 0.0f64;
    let mut max_overhead_pct = ex::telemetry::DEFAULT_MAX_OVERHEAD_PCT;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro <experiment> [--full] [--device k20|gtx580|amd|phi] \
                     [--json DIR] [--single-stage] [--slow]\n\
                     \x20      [--check] [--baseline DIR] [--tolerance T] \
                     [--inject-slowdown PCT] [--schedules N] [--seed S] \
                     [--min-wall-gain X] [--min-staged-wall-gain X] \
                     [--max-overhead-pct P]\n\
                     experiments: fig6 sweep010 sweep100 fig7 table2 tilesize dominance \
                     fig8 table3 async phi primes multigpu ablation serve soak outofcore \
                     simperf telemetry trace races all"
                );
                std::process::exit(0);
            }
            "--full" => full = true,
            "--single-stage" => single_stage = true,
            "--slow" => include_slow = true,
            "--check" => check = true,
            "--baseline" => {
                i += 1;
                baseline_dir.clone_from(&argv[i]);
            }
            "--tolerance" => {
                i += 1;
                tolerance = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance wants a number, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--inject-slowdown" => {
                i += 1;
                inject_slowdown_pct = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--inject-slowdown wants a percentage, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--schedules" => {
                i += 1;
                schedules = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--schedules wants a count, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                seed = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--seed wants a u64, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--min-wall-gain" => {
                i += 1;
                min_wall_gain = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--min-wall-gain wants a factor, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--min-staged-wall-gain" => {
                i += 1;
                min_staged_wall_gain = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--min-staged-wall-gain wants a factor, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--max-overhead-pct" => {
                i += 1;
                max_overhead_pct = argv[i].parse().unwrap_or_else(|_| {
                    eprintln!("--max-overhead-pct wants a percentage, got {:?}", argv[i]);
                    std::process::exit(2);
                });
            }
            "--device" => {
                i += 1;
                device = device_by_name(&argv[i]).unwrap_or_else(|| {
                    eprintln!("unknown device {:?} (k20|gtx580|amd|phi)", argv[i]);
                    std::process::exit(2);
                });
            }
            "--json" => {
                i += 1;
                json_dir = Some(argv[i].clone());
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            name => experiment = name.to_string(),
        }
        i += 1;
    }
    Args {
        experiment,
        scale: Scale::from_flag(full),
        device,
        json_dir,
        single_stage,
        include_slow,
        check,
        baseline_dir,
        tolerance,
        inject_slowdown_pct,
        schedules,
        seed,
        min_wall_gain,
        min_staged_wall_gain,
        max_overhead_pct,
    }
}

fn write_file(dir: &str, name: &str, body: &str) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/{name}");
    let mut f = std::fs::File::create(&path).expect("create output file");
    f.write_all(body.as_bytes()).expect("write output file");
    eprintln!("[archived {path}]");
}

/// Collects each experiment's versioned report: archives it when `--json`
/// was given, and keeps it for the `--check` comparison.
struct Sink {
    json_dir: Option<String>,
    device: gpu_sim::DeviceSpec,
    scale: &'static str,
    keep: bool,
    reports: Vec<BenchReport>,
}

impl Sink {
    fn emit<T: Serialize>(&mut self, name: &str, rows: &T) {
        self.emit_scheme(name, "heuristic", rows);
    }

    fn emit_scheme<T: Serialize>(&mut self, name: &str, scheme: &str, rows: &T) {
        let report = make_report_scheme(name, &self.device, self.scale, scheme, rows);
        self.archive(name, report);
    }

    fn emit_engine<T: Serialize>(
        &mut self,
        name: &str,
        engine: &str,
        threads: usize,
        rows: &T,
    ) {
        let report = make_report_engine(
            name,
            &self.device,
            self.scale,
            "heuristic",
            engine,
            threads,
            rows,
        );
        self.archive(name, report);
    }

    fn archive(&mut self, name: &str, report: BenchReport) {
        if let Some(dir) = &self.json_dir {
            let body = serde_json::to_string_pretty(&report).expect("serialise report");
            write_file(dir, &format!("{name}.json"), &body);
        }
        if self.keep {
            self.reports.push(report);
        }
    }
}

fn run_check(args: &Args, reports: &[BenchReport]) -> bool {
    let mut failed = false;
    for fresh in reports {
        let path = format!("{}/{}.json", args.baseline_dir, fresh.experiment);
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[check] {}: no baseline at {path} ({e})", fresh.experiment);
                failed = true;
                continue;
            }
        };
        match check_report(&baseline, fresh, args.tolerance, args.inject_slowdown_pct) {
            Err(e) => {
                eprintln!("[check] {e}");
                failed = true;
            }
            Ok(CheckOutcome {
                experiment,
                metrics_compared,
                wall_compared,
                slo_compared,
                regressions,
            }) => {
                let mut wall = if wall_compared > 0 {
                    format!(
                        " + {wall_compared} wall-clock within {:.0}%",
                        DEFAULT_WALL_TOLERANCE * 100.0
                    )
                } else {
                    String::new()
                };
                if slo_compared > 0 {
                    wall.push_str(&format!(" + {slo_compared} SLO (lower-is-better)"));
                }
                if regressions.is_empty() {
                    eprintln!(
                        "[check] {experiment}: OK ({metrics_compared} metrics within {:.0}%{wall})",
                        args.tolerance * 100.0
                    );
                } else {
                    failed = true;
                    let total = metrics_compared + wall_compared + slo_compared;
                    eprintln!(
                        "[check] {experiment}: {} of {total} compared metrics regressed:",
                        regressions.len()
                    );
                    for r in &regressions {
                        eprintln!("[check]   {r}");
                    }
                }
            }
        }
    }
    failed
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let known = [
        "fig6", "sweep010", "sweep100", "fig7", "table2", "tilesize", "dominance", "fig8",
        "table3", "async", "phi", "primes", "multigpu", "ablation", "serve", "soak",
        "outofcore", "simperf", "telemetry", "trace", "races", "all",
    ];
    if !known.contains(&args.experiment.as_str()) {
        eprintln!("unknown experiment {:?}; one of {known:?}", args.experiment);
        std::process::exit(2);
    }
    let run = |name: &str| args.experiment == name || args.experiment == "all";
    let t0 = std::time::Instant::now();
    let mut sink = Sink {
        json_dir: args.json_dir.clone(),
        device: args.device.clone(),
        scale: match args.scale {
            Scale::Full => "full",
            Scale::Reduced => "reduced",
        },
        keep: args.check,
        reports: Vec::new(),
    };

    if run("fig6") {
        let (rows, summary) = ex::fig6::run(&args.device, args.scale);
        println!("{}", ex::fig6::render(&rows, &summary));
        sink.emit("fig6", &(&rows, &summary));
    }
    if run("sweep010") {
        let rows = ex::sweep010::run(args.scale);
        println!("{}", ex::sweep010::render(&rows));
        sink.emit("sweep010", &rows);
    }
    if run("sweep100") {
        let rows = ex::sweep100::run(args.scale);
        println!("{}", ex::sweep100::render(&rows));
        sink.emit("sweep100", &rows);
    }
    if run("fig7") {
        let cells = ex::fig7::run(args.scale);
        println!("{}", ex::fig7::render(&cells));
        sink.emit("fig7", &cells);
    }
    if run("table2") {
        let rows = ex::table2::run(&args.device, args.scale, args.single_stage);
        println!("{}", ex::table2::render(&rows));
        sink.emit("table2", &rows);
    }
    if run("tilesize") {
        let rows = ex::tilesize::run(&args.device, args.scale);
        println!("{}", ex::tilesize::render_for(&rows, args.device.name));
        sink.emit("tilesize", &rows);
    }
    let mut dominance_failed = false;
    if run("dominance") {
        let (rows, probes, summary) = ex::dominance::run(&args.device, args.scale);
        println!("{}", ex::dominance::render(&rows, &probes, &summary));
        sink.emit("dominance", &(&rows, &probes, &summary));
        if !summary.passed {
            eprintln!(
                "[dominance] FAIL: C2R won {}/{} contested shapes (worst ratio x{:.2}); \
                 {} coprime + {} single-stage planner fallback(s)",
                summary.c2r_wins,
                summary.contested,
                summary.min_speedup_vs_coprime,
                summary.probe_coprime,
                summary.probe_single_stage
            );
            dominance_failed = true;
        }
    }
    if run("fig8") {
        let report = ex::fig8::run(args.scale);
        println!("{}", ex::fig8::render(&report));
        sink.emit("fig8", &report);
    }
    if run("table3") {
        let (rows, details) = ex::table3::run(&args.device, args.scale, args.include_slow);
        println!("{}", ex::table3::render(&rows, &details));
        sink.emit("table3", &(&rows, &details));
    }
    if run("async") {
        let (rows, summary) = ex::asyncq::run(&args.device, args.scale);
        println!("{}", ex::asyncq::render(&rows, &summary));
        sink.emit("async", &(&rows, &summary));
    }
    if run("primes") {
        let rows = ex::primes::run(&args.device);
        println!("{}", ex::primes::render(&rows));
        sink.emit("primes", &rows);
    }
    if run("ablation") {
        let rows = ex::ablation::run();
        println!("{}", ex::ablation::render(&rows));
        sink.emit("ablation", &rows);
    }
    if run("multigpu") {
        let (r, c) = ipt_bench::workloads::async_sizes(args.scale)[0];
        let rows = ex::multigpu::run(&args.device, r, c);
        println!("{}", ex::multigpu::render(&rows));
        sink.emit("multigpu", &rows);
    }
    if run("phi") {
        let report = ex::phi::run(args.scale);
        println!("{}", ex::phi::render(&report));
        sink.emit("phi", &report);
    }
    if run("serve") {
        let (rows, summary) = ex::serve::run(&args.device, args.scale);
        println!("{}", ex::serve::render(&rows, &summary));
        sink.emit_scheme("serve", "plan-cache", &(&rows, &summary));
    }
    let mut soak_failed = false;
    if run("soak") {
        let (rows, summary) = ex::soak::run(&args.device, args.scale);
        println!("{}", ex::soak::render(&rows, &summary));
        sink.emit_scheme("soak", "plan-cache", &(&rows, &summary));
        if !summary.passed {
            eprintln!(
                "[soak] FAIL: {} correctness failures, hit rate {:.3} (floor 0.90)",
                summary.correctness_failures, summary.hit_rate
            );
            soak_failed = true;
        }
    }
    let mut outofcore_failed = false;
    if run("outofcore") {
        let (rows, summary, journal_json) = ex::outofcore::run(&args.device, args.scale);
        println!("{}", ex::outofcore::render(&rows, &summary));
        sink.emit_scheme("outofcore", "stream", &(&rows, &summary));
        if let Some(dir) = &args.json_dir {
            // The crash-run chunk journal is the campaign's recovery
            // artifact: it shows which chunks were durable at the crash
            // and where the resume picked up.
            write_file(dir, "outofcore_journal.json", &journal_json);
        }
        if !summary.passed {
            eprintln!(
                "[outofcore] FAIL: efficiency {:.3} (floor {:.2}), {} mismatches, \
                 {} uncommitted, {} errors",
                summary.overlap_efficiency,
                summary.efficiency_floor,
                summary.slo_mismatches,
                summary.slo_uncommitted,
                summary.slo_errors
            );
            outofcore_failed = true;
        }
    }
    // `simperf` is deliberately not part of `all`: its headline numbers
    // are host wall-clock (machine-specific), so it gates in its own CI
    // job with a pinned thread count rather than riding the deterministic
    // baseline sweep.
    let mut wall_gain_failed = false;
    if args.experiment == "simperf" {
        let (rows, summary) = ex::simperf::run(&args.device, args.scale);
        println!("{}", ex::simperf::render(&rows, &summary));
        sink.emit_engine("simperf", "parallel", summary.threads, &(&rows, &summary));
        if args.min_wall_gain > 0.0 && summary.wall_gain_x < args.min_wall_gain {
            eprintln!(
                "[simperf] FAIL: wall gain {:.2}x below required {:.2}x \
                 ({} threads on {} cores)",
                summary.wall_gain_x, args.min_wall_gain, summary.threads, summary.host_cores
            );
            wall_gain_failed = true;
        }
        if args.min_staged_wall_gain > 0.0
            && summary.wall_gain_staged_x < args.min_staged_wall_gain
        {
            eprintln!(
                "[simperf] FAIL: 3-stage pipeline wall gain {:.2}x below required {:.2}x \
                 ({} threads on {} cores)",
                summary.wall_gain_staged_x,
                args.min_staged_wall_gain,
                summary.threads,
                summary.host_cores
            );
            wall_gain_failed = true;
        }
    }
    // `telemetry` is deliberately not part of `all`: its overhead gate is
    // host wall-clock (machine-specific), so it runs in its own CI job;
    // the deterministic soak aggregates it re-derives still archive and
    // gate against the committed baseline under `--check`.
    let mut telemetry_failed = false;
    if args.experiment == "telemetry" {
        let (rows, summary) = ex::telemetry::run(&args.device, args.scale, args.max_overhead_pct);
        println!("{}", ex::telemetry::render(&rows, &summary));
        sink.emit_scheme("telemetry", "plan-cache", &(&rows, &summary));
        if !summary.passed {
            eprintln!(
                "[telemetry] FAIL: aggregates match: {}, overhead {:+.2}% (ceiling {:.1}%), \
                 false positives {}",
                summary.aggregates_match, summary.overhead_pct, summary.max_overhead_pct,
                summary.slo_false_positive_alerts
            );
            telemetry_failed = true;
        }
    }
    // `races` is deliberately not part of `all`: it is a correctness
    // campaign with its own pass/fail verdict and (in CI) a much larger
    // schedule count, not a throughput measurement.
    let mut races_failed = false;
    if args.experiment == "races" {
        let report = ex::races::run(args.seed, args.schedules);
        println!("{}", ex::races::render(&report));
        if let Some(dir) = &args.json_dir {
            let body = serde_json::to_string_pretty(&report).expect("serialise races report");
            write_file(dir, "races.json", &body);
        }
        races_failed = !report.passed();
    }
    if run("trace") {
        // The trace is an artifact pair, not a BenchReport: it bypasses the
        // sink and the regression check.
        let report = ex::trace::run(&args.device, args.scale);
        println!("{}", ex::trace::render(&report));
        if let Some(dir) = &args.json_dir {
            write_file(dir, "trace.json", &report.chrome_json);
            write_file(dir, "metrics.prom", &report.prometheus);
        }
    }

    let failed = args.check && run_check(&args, &sink.reports);
    eprintln!("[repro done in {:.1}s]", t0.elapsed().as_secs_f64());
    if failed
        || races_failed
        || wall_gain_failed
        || soak_failed
        || outofcore_failed
        || telemetry_failed
        || dominance_failed
    {
        std::process::exit(1);
    }
}
