//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--full] [--device NAME] [--json DIR] [--single-stage]
//!
//! experiments:
//!   fig6          Figure 6  (spreading & padding, 010!)
//!   sweep010      §7.1      (optimised vs original PTTWAC, 3 GPUs)
//!   sweep100      §7.2      (warp-based vs Sung 100!, 3 GPUs)
//!   fig7          Figure 7  (100! throughput heat map)
//!   table2        Table 2   (3-stage vs 4-stage ± fusion)
//!   dominance     §7.3      (throughput vs tile size)
//!   fig8          Figure 8  (tile scatter + pruning heuristic)
//!   table3        Table 3 / Figure 9 (CPU vs GPU assessment)
//!   async         §7.6      (Q command queues)
//!   phi           §7.7      (Xeon Phi)
//!   primes        extension (coprime decomposition vs prime-dim fallback)
//!   multigpu      extension (multi-GPU scaling, paper §8 future work)
//!   ablation      cost-model ablations (which mechanism drives which result)
//!   all           everything above
//! ```
//!
//! Default scale is 1/5-reduced matrices (minutes); `--full` uses the
//! paper's exact sizes (tens of minutes). `--json DIR` archives rows as
//! JSON next to the text output.

use ipt_bench::experiments as ex;
use ipt_bench::workloads::{device_by_name, Scale};
use serde::Serialize;
use std::io::Write;

struct Args {
    experiment: String,
    scale: Scale,
    device: gpu_sim::DeviceSpec,
    json_dir: Option<String>,
    single_stage: bool,
    include_slow: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut full = false;
    let mut device = gpu_sim::DeviceSpec::tesla_k20();
    let mut json_dir = None;
    let mut single_stage = false;
    let mut include_slow = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro <experiment> [--full] [--device k20|gtx580|amd|phi] \
                     [--json DIR] [--single-stage] [--slow]\n\
                     experiments: fig6 sweep010 sweep100 fig7 table2 dominance fig8 \
                     table3 async phi primes multigpu ablation all"
                );
                std::process::exit(0);
            }
            "--full" => full = true,
            "--single-stage" => single_stage = true,
            "--slow" => include_slow = true,
            "--device" => {
                i += 1;
                device = device_by_name(&argv[i]).unwrap_or_else(|| {
                    eprintln!("unknown device {:?} (k20|gtx580|amd|phi)", argv[i]);
                    std::process::exit(2);
                });
            }
            "--json" => {
                i += 1;
                json_dir = Some(argv[i].clone());
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            name => experiment = name.to_string(),
        }
        i += 1;
    }
    Args {
        experiment,
        scale: Scale::from_flag(full),
        device,
        json_dir,
        single_stage,
        include_slow,
    }
}

fn archive<T: Serialize>(dir: &Option<String>, name: &str, rows: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{name}.json");
    let mut f = std::fs::File::create(&path).expect("create json file");
    let body = serde_json::to_string_pretty(rows).expect("serialise");
    f.write_all(body.as_bytes()).expect("write json");
    eprintln!("[archived {path}]");
}

fn main() {
    let args = parse_args();
    let known = [
        "fig6", "sweep010", "sweep100", "fig7", "table2", "dominance", "fig8", "table3",
        "async", "phi", "primes", "multigpu", "ablation", "all",
    ];
    if !known.contains(&args.experiment.as_str()) {
        eprintln!("unknown experiment {:?}; one of {known:?}", args.experiment);
        std::process::exit(2);
    }
    let run = |name: &str| args.experiment == name || args.experiment == "all";
    let t0 = std::time::Instant::now();

    if run("fig6") {
        let (rows, summary) = ex::fig6::run(&args.device, args.scale);
        println!("{}", ex::fig6::render(&rows, &summary));
        archive(&args.json_dir, "fig6", &(&rows, &summary));
    }
    if run("sweep010") {
        let rows = ex::sweep010::run(args.scale);
        println!("{}", ex::sweep010::render(&rows));
        archive(&args.json_dir, "sweep010", &rows);
    }
    if run("sweep100") {
        let rows = ex::sweep100::run(args.scale);
        println!("{}", ex::sweep100::render(&rows));
        archive(&args.json_dir, "sweep100", &rows);
    }
    if run("fig7") {
        let cells = ex::fig7::run(args.scale);
        println!("{}", ex::fig7::render(&cells));
        archive(&args.json_dir, "fig7", &cells);
    }
    if run("table2") {
        let rows = ex::table2::run(&args.device, args.scale, args.single_stage);
        println!("{}", ex::table2::render(&rows));
        archive(&args.json_dir, "table2", &rows);
    }
    if run("dominance") {
        let rows = ex::dominance::run(&args.device, args.scale);
        println!("{}", ex::dominance::render_for(&rows, args.device.name));
        archive(&args.json_dir, "dominance", &rows);
    }
    if run("fig8") {
        let report = ex::fig8::run(args.scale);
        println!("{}", ex::fig8::render(&report));
        archive(&args.json_dir, "fig8", &report);
    }
    if run("table3") {
        let (rows, details) = ex::table3::run(&args.device, args.scale, args.include_slow);
        println!("{}", ex::table3::render(&rows, &details));
        archive(&args.json_dir, "table3", &(&rows, &details));
    }
    if run("async") {
        let (rows, summary) = ex::asyncq::run(&args.device, args.scale);
        println!("{}", ex::asyncq::render(&rows, &summary));
        archive(&args.json_dir, "async", &(&rows, &summary));
    }
    if run("primes") {
        let rows = ex::primes::run(&args.device);
        println!("{}", ex::primes::render(&rows));
        archive(&args.json_dir, "primes", &rows);
    }
    if run("ablation") {
        let rows = ex::ablation::run();
        println!("{}", ex::ablation::render(&rows));
        archive(&args.json_dir, "ablation", &rows);
    }
    if run("multigpu") {
        let (r, c) = ipt_bench::workloads::async_sizes(args.scale)[0];
        let rows = ex::multigpu::run(&args.device, r, c);
        println!("{}", ex::multigpu::render(&rows));
        archive(&args.json_dir, "multigpu", &rows);
    }
    if run("phi") {
        let report = ex::phi::run(args.scale);
        println!("{}", ex::phi::render(&report));
        archive(&args.json_dir, "phi", &report);
    }

    eprintln!("[repro done in {:.1}s]", t0.elapsed().as_secs_f64());
}
