//! Shared runners for the experiment harness: verified simulated kernel
//! executions and wall-clock measurement of the CPU baselines.

use gpu_sim::{DeviceSpec, KernelStats, Sim};
use ipt_core::{InstancedTranspose, Matrix};
use ipt_gpu::opts::{FlagLayout, Variant100};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use std::time::Instant;

/// Run a `010!` tile-transposition workload (the Fig. 6 / §7.1 kernel) and
/// verify the result. Returns the kernel stats and the payload bytes.
///
/// # Panics
/// Panics on infeasible launches or incorrect results.
#[must_use]
pub fn run_010(
    dev: &DeviceSpec,
    instances: usize,
    m: usize,
    n: usize,
    wg_size: usize,
    flags: FlagLayout,
) -> (KernelStats, f64) {
    let op = InstancedTranspose::new(instances, m, n, 1);
    let mut sim = Sim::new(dev.clone(), op.total_len() + 8);
    let buf = sim.alloc(op.total_len());
    let data: Vec<u32> = (0..op.total_len() as u32).collect();
    sim.upload_u32(buf, &data);
    let k = Pttwac010 { data: buf, instances, rows: m, cols: n, wg_size, flags, backoff: None };
    let stats = sim.launch(&k).expect("feasible 010 launch");
    let mut want = data;
    op.apply_seq(&mut want);
    assert_eq!(sim.download_u32(buf), want, "010! kernel incorrect");
    (stats, (op.total_len() * 4) as f64)
}

/// Run a `100!` super-element workload (the §7.2 / Fig. 7 kernel) and
/// verify. `variant` may be `Auto`.
///
/// # Panics
/// Panics on infeasible launches or incorrect results.
#[must_use]
pub fn run_100(
    dev: &DeviceSpec,
    rows: usize,
    cols: usize,
    super_size: usize,
    variant: Variant100,
    wg_size: usize,
) -> (KernelStats, f64) {
    let total = rows * cols * super_size;
    let flag_words = Pttwac100::flag_words(rows * cols);
    let mut sim = Sim::new(dev.clone(), total + flag_words + 8);
    let data = sim.alloc(total);
    let flags = sim.alloc(flag_words);
    let v: Vec<u32> = (0..total as u32).collect();
    sim.upload_u32(data, &v);
    sim.zero(flags);
    let k = Pttwac100 {
        data,
        flags,
        instances: 1,
        rows,
        cols,
        super_size,
        variant: variant.resolve(super_size, dev.simd_width),
        wg_size,
        fuse_tile: None,
        backoff: None,
    };
    let stats = sim.launch(&k).expect("feasible 100 launch");
    let op = InstancedTranspose::new(1, rows, cols, super_size);
    let mut want = v;
    op.apply_seq(&mut want);
    assert_eq!(sim.download_u32(data), want, "100! kernel incorrect");
    (stats, (total * 4) as f64)
}

/// Median wall-clock seconds of `runs` executions of `f` (each run gets a
/// fresh clone of `input`). The result of the last run is verified by the
/// caller via the returned value.
pub fn measure_median<T: Clone, R>(input: &T, runs: usize, mut f: impl FnMut(T) -> R) -> (f64, R) {
    assert!(runs >= 1);
    // One untimed warm-up run (page faults, rayon pool spin-up).
    let _ = f(input.clone());
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let x = input.clone();
        let t0 = Instant::now();
        let r = f(x);
        times.push(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("runs >= 1"))
}

/// Paper-convention throughput.
#[must_use]
pub fn gbps(bytes: f64, secs: f64) -> f64 {
    2.0 * bytes / secs / 1e9
}

/// Deterministic test matrix for CPU measurements.
#[must_use]
pub fn host_matrix(rows: usize, cols: usize) -> Matrix<f32> {
    Matrix::pattern_f32(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_010_verifies() {
        let dev = DeviceSpec::tesla_k20();
        let (stats, bytes) = run_010(&dev, 8, 16, 64, 128, FlagLayout::Packed);
        assert!(stats.time_s > 0.0);
        assert_eq!(bytes, (8 * 16 * 64 * 4) as f64);
    }

    #[test]
    fn run_100_verifies() {
        let dev = DeviceSpec::tesla_k20();
        let (stats, _) = run_100(&dev, 32, 25, 16, Variant100::Auto, 256);
        assert!(stats.time_s > 0.0);
    }

    #[test]
    fn median_of_runs() {
        let (t, v) = measure_median(&41u32, 3, |x| x + 1);
        assert!(t >= 0.0);
        assert_eq!(v, 42);
    }

    #[test]
    fn gbps_convention() {
        // 1 GB moved in 1 s = 2 GB/s by the paper's read+write convention.
        assert!((gbps(1e9, 1.0) - 2.0).abs() < 1e-12);
    }
}
