//! **Figure 7** — throughput heat map of the optimised `100!` kernel over
//! `(m, M′)`, on the Tesla K20 and the Radeon HD 7750.
//!
//! Paper result: on the K20 the best band is `m ∈ 64..160`; on Cape Verde
//! the best performance needs `m > 128` (the wavefront is twice as wide).

use crate::common::run_100;
use crate::workloads::Scale;
use gpu_sim::DeviceSpec;
use ipt_gpu::opts::{GpuOptions, Variant100};
use serde::Serialize;

/// One heat-map cell.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Device name.
    pub device: String,
    /// Super-element size m.
    pub m: usize,
    /// Grid columns M′.
    pub mp: usize,
    /// Simulated throughput (GB/s, paper convention).
    pub gbps: f64,
}

/// Sweep grid (`m, M′ < 256`).
#[must_use]
pub fn grid(scale: Scale) -> (Vec<usize>, Vec<usize>) {
    match scale {
        Scale::Full => ((16..=255).step_by(16).collect(), (16..=255).step_by(16).collect()),
        Scale::Reduced => ((16..=255).step_by(48).collect(), (16..=255).step_by(48).collect()),
    }
}

/// Run the sweep on both Figure-7 devices.
#[must_use]
pub fn run(scale: Scale) -> Vec<Cell> {
    let n_dim = 64usize;
    let mut cells = Vec::new();
    for dev in [DeviceSpec::tesla_k20(), DeviceSpec::hd7750()] {
        let wg = GpuOptions::tuned_for(&dev).wg_size_100;
        let (ms, mps) = grid(scale);
        for &m in &ms {
            for &mp in &mps {
                let (stats, bytes) = run_100(&dev, n_dim, mp, m, Variant100::Auto, wg);
                cells.push(Cell {
                    device: dev.name.to_string(),
                    m,
                    mp,
                    gbps: stats.throughput_gbps(bytes),
                });
            }
        }
    }
    cells
}

/// The m value with the best mean throughput per device (the paper's
/// "best band" observation).
#[must_use]
pub fn best_m_per_device(cells: &[Cell]) -> Vec<(String, usize, f64)> {
    let mut devices: Vec<String> = cells.iter().map(|c| c.device.clone()).collect();
    devices.sort();
    devices.dedup();
    devices
        .into_iter()
        .map(|d| {
            let mut ms: Vec<usize> = cells.iter().filter(|c| c.device == d).map(|c| c.m).collect();
            ms.sort_unstable();
            ms.dedup();
            let (best_m, best) = ms
                .into_iter()
                .map(|m| {
                    let v: Vec<f64> = cells
                        .iter()
                        .filter(|c| c.device == d && c.m == m)
                        .map(|c| c.gbps)
                        .collect();
                    (m, v.iter().sum::<f64>() / v.len() as f64)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            (d, best_m, best)
        })
        .collect()
}

/// Render the text report (grid per device + best-band summary).
#[must_use]
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    let mut devices: Vec<String> = cells.iter().map(|c| c.device.clone()).collect();
    devices.sort();
    devices.dedup();
    for d in &devices {
        let mut ms: Vec<usize> = cells.iter().filter(|c| &c.device == d).map(|c| c.m).collect();
        ms.sort_unstable();
        ms.dedup();
        let mut mps: Vec<usize> = cells.iter().filter(|c| &c.device == d).map(|c| c.mp).collect();
        mps.sort_unstable();
        mps.dedup();
        let mut rows = Vec::new();
        for &m in &ms {
            let mut row = vec![m.to_string()];
            for &mp in &mps {
                let v = cells
                    .iter()
                    .find(|c| &c.device == d && c.m == m && c.mp == mp)
                    .map_or(0.0, |c| c.gbps);
                row.push(format!("{v:.1}"));
            }
            rows.push(row);
        }
        let mut header = vec!["m\\M'".to_string()];
        header.extend(mps.iter().map(ToString::to_string));
        let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
        out.push_str(&super::text_table(
            &format!("Figure 7: transpose 100! throughput (GB/s) on {d}"),
            &hdr,
            &rows,
        ));
        out.push('\n');
    }
    for (d, m, g) in best_m_per_device(cells) {
        out.push_str(&format!("best m on {d}: {m} ({g:.1} GB/s avg)\n"));
    }
    out.push_str("paper: best band m in 64..160 on K20; m > 128 on Cape Verde\n");
    out
}
