//! **§7.7** — the OpenCL kernels on a non-GPU accelerator: Intel Xeon Phi.
//!
//! Paper: 4-stage 2.81 GB/s, 3-stage 5.02 GB/s (1.8×) averaged over the
//! Table-2 sizes; local memory is emulated in GDDR (no scratchpad), which
//! both lowers absolute throughput and makes the kernels "not strictly
//! in-place".

use crate::workloads::{matrix_bytes, table2_sizes, Scale};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::StagePlan;
use ipt_core::Matrix;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use serde::Serialize;

/// The experiment's aggregate result.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Mean 3-stage throughput (GB/s).
    pub three_stage_gbps: f64,
    /// Mean 4-stage throughput (GB/s).
    pub four_stage_gbps: f64,
    /// Ratio (paper: 1.8×).
    pub ratio: f64,
    /// Per-size values (rows, cols, 3-stage, 4-stage).
    pub per_size: Vec<(usize, usize, f64, f64)>,
}

/// Run the Xeon Phi comparison.
#[must_use]
pub fn run(scale: Scale) -> Report {
    let dev = DeviceSpec::xeon_phi();
    let opts = GpuOptions::tuned_for(&dev);
    let mut per_size = Vec::new();
    for (r, c) in table2_sizes(scale) {
        let t3 = super::table2::tile3_for(r, c, scale);
        let t4 = super::table2::tile4_for(r, c);
        let run_one = |plan: &StagePlan| -> f64 {
            let mut sim = Sim::new(dev.clone(), r * c + plan_flag_words(plan) + 64);
            let mut data = Matrix::iota(r, c).into_vec();
            let stats = transpose_on_device(&mut sim, &mut data, r, c, plan, &opts)
                .expect("feasible on phi");
            stats.throughput_gbps(matrix_bytes(r, c))
        };
        let g3 = run_one(&StagePlan::three_stage(r, c, t3).expect("tile divides"));
        let g4 = run_one(&StagePlan::four_stage(r, c, t4).expect("tile divides"));
        per_size.push((r, c, g3, g4));
    }
    let mean3 = per_size.iter().map(|x| x.2).sum::<f64>() / per_size.len() as f64;
    let mean4 = per_size.iter().map(|x| x.3).sum::<f64>() / per_size.len() as f64;
    Report { three_stage_gbps: mean3, four_stage_gbps: mean4, ratio: mean3 / mean4, per_size }
}

/// Render the text report.
#[must_use]
pub fn render(rep: &Report) -> String {
    let rows: Vec<Vec<String>> = rep
        .per_size
        .iter()
        .map(|&(r, c, g3, g4)| {
            vec![format!("{r}x{c}"), format!("{g3:.2}"), format!("{g4:.2}")]
        })
        .collect();
    let mut out = super::text_table(
        "S7.7: Xeon Phi (local memory emulated in DRAM)",
        &["matrix", "3-stage GB/s", "4-stage GB/s"],
        &rows,
    );
    out.push_str(&format!(
        "\naverages: 3-stage {:.2} GB/s, 4-stage {:.2} GB/s → x{:.2}  [paper: 5.02 vs 2.81, x1.8]\n",
        rep.three_stage_gbps, rep.four_stage_gbps, rep.ratio
    ));
    out
}
