//! **Figure 8** — tile sizes vs performance: the throughput surface over
//! all legal `(m, n)` tiles for a 4:1 matrix, on the K20 and the HD 7750.
//!
//! Paper: the best combinations (≥ 80 % of the exhaustive optimum) cluster
//! along `m·n < 3600` words with `m, n ≈ 50..100`; the simple heuristic
//! recovers ≥ 80 % of the best throughput on all three GPUs.

use crate::workloads::{table2_sizes, Scale};
use gpu_sim::DeviceSpec;
use ipt_core::TileHeuristic;
use ipt_gpu::autotune::{exhaustive_search_rec, TilePoint, TuneLog};
use ipt_gpu::opts::GpuOptions;
use ipt_obs::NoopRecorder;
use serde::Serialize;

/// One scatter point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Device name.
    pub device: String,
    /// Tile height.
    pub m: usize,
    /// Tile width.
    pub n: usize,
    /// Throughput (GB/s).
    pub gbps: f64,
    /// Within the §7.4 pruned candidate region?
    pub in_pruned_region: bool,
}

/// Scatter + the heuristic-recovery headline per device.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// All measured points.
    pub points: Vec<Point>,
    /// Per device: (name, exhaustive best, pruned-region best, ratio).
    pub recovery: Vec<(String, f64, f64, f64)>,
    /// Per device: the §7.4 search accounting (considered / measured /
    /// rejected / pruned, and the chosen tile).
    pub tune: Vec<(String, TuneLog)>,
}

fn heuristic(scale: Scale) -> TileHeuristic {
    match scale {
        Scale::Full => TileHeuristic::default(),
        // The 1/5-scaled matrix has its good tiles in a lower band.
        Scale::Reduced => {
            TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 100 }
        }
    }
}

/// Run the scatter on both Figure-8 devices for the 4:1 matrix.
#[must_use]
pub fn run(scale: Scale) -> Report {
    let (rows, cols) = table2_sizes(scale)[0];
    let h = heuristic(scale);
    let mut points = Vec::new();
    let mut recovery = Vec::new();
    let mut tune = Vec::new();
    for dev in [DeviceSpec::tesla_k20(), DeviceSpec::hd7750()] {
        let opts = GpuOptions::tuned_for(&dev);
        let max_dim = match scale {
            Scale::Full => 256,
            Scale::Reduced => 200,
        };
        let (pts, log): (Vec<TilePoint>, TuneLog) =
            exhaustive_search_rec(&dev, rows, cols, max_dim, &opts, &NoopRecorder);
        tune.push((dev.name.to_string(), log));
        let best = pts.first().map_or(0.0, |p| p.gbps);
        let pruned_best = pts
            .iter()
            .filter(|p| {
                h.feasible(p.tile)
                    && (h.preferred_lo..=h.preferred_hi).contains(&p.tile.m)
                    && (h.preferred_lo..=h.preferred_hi).contains(&p.tile.n)
            })
            .map(|p| p.gbps)
            .fold(0.0, f64::max);
        recovery.push((
            dev.name.to_string(),
            best,
            pruned_best,
            if best > 0.0 { pruned_best / best } else { 0.0 },
        ));
        for p in pts {
            points.push(Point {
                device: dev.name.to_string(),
                m: p.tile.m,
                n: p.tile.n,
                gbps: p.gbps,
                in_pruned_region: h.feasible(p.tile)
                    && (h.preferred_lo..=h.preferred_hi).contains(&p.tile.m)
                    && (h.preferred_lo..=h.preferred_hi).contains(&p.tile.n),
            });
        }
    }
    Report { points, recovery, tune }
}

/// Render the text report: top tiles per device + recovery headline.
#[must_use]
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    let mut devices: Vec<String> = report.points.iter().map(|p| p.device.clone()).collect();
    devices.sort();
    devices.dedup();
    for d in &devices {
        let mut pts: Vec<&Point> = report.points.iter().filter(|p| &p.device == d).collect();
        pts.sort_by(|a, b| b.gbps.total_cmp(&a.gbps));
        let rows: Vec<Vec<String>> = pts
            .iter()
            .take(12)
            .map(|p| {
                vec![
                    p.m.to_string(),
                    p.n.to_string(),
                    (p.m * p.n).to_string(),
                    format!("{:.2}", p.gbps),
                    if p.in_pruned_region { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        out.push_str(&super::text_table(
            &format!("Figure 8: best tiles on {d} (top 12 of {})", pts.len()),
            &["m", "n", "m*n", "GB/s", "pruned-region"],
            &rows,
        ));
        out.push('\n');
    }
    for (d, best, pruned, ratio) in &report.recovery {
        out.push_str(&format!(
            "{d}: exhaustive best {best:.2} GB/s, pruned-region best {pruned:.2} GB/s → {:.0}% recovered [paper: >=80%]\n",
            ratio * 100.0
        ));
    }
    for (d, log) in &report.tune {
        let chosen = log
            .chosen
            .map_or_else(|| "none".to_string(), |c| format!("{}x{} @ {:.2} GB/s", c.m, c.n, c.gbps));
        out.push_str(&format!(
            "{d}: search considered {} tiles ({} measured, {} infeasible, {} pruned out), chose {chosen}\n",
            log.considered, log.measured, log.rejected_infeasible, log.pruned_out
        ));
    }
    out
}
