//! **Engineering** — wall-clock of the simulation engine itself: the
//! pooled parallel engine vs the serial round-robin engine, on both
//! work-group-local kernels and the cross-WG-claims `100!` family
//! (all three variants) plus the full 3-stage pipeline.
//!
//! Every workload is launched with both engines from identical initial
//! state; the experiment *asserts* the two runs are bit-identical (memory
//! image and full [`KernelStats`] report — the proptest invariant,
//! re-checked on the benchmark shapes) and reports host wall time for
//! each. The simulated `gbps` column is deterministic and gates with the
//! tight tolerance; the `wall_*` columns are host timings on the wide
//! wall-clock channel (see `ipt_obs::extract_wall_metrics`) and are only
//! compared between runs with identical engine/thread provenance.
//!
//! Wall-clock quantities deliberately avoid the `gbps`/`speedup` metric
//! naming — the `wall_` prefix routes them to the wide-tolerance channel.

use crate::workloads::Scale;
use gpu_sim::{DeviceSpec, EngineMode, KernelStats, Sim};
use ipt_core::{InstancedTranspose, StagePlan, TileConfig};
use ipt_gpu::bs::BsKernel;
use ipt_gpu::coprime::{CoprimeColShuffle, CoprimeRowScramble};
use ipt_gpu::opts::{FlagLayout, GpuOptions, Variant100};
use ipt_gpu::pipeline::{plan_flag_words, run_plan};
use ipt_gpu::pttwac010::Pttwac010;
use ipt_gpu::pttwac100::Pttwac100;
use serde::Serialize;

/// Timed launches per (workload, engine); the minimum wall time is
/// reported (robust to scheduler jitter).
pub const REPEATS: usize = 3;

/// One workload row of the report.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Workload label.
    pub workload: String,
    /// Work-groups in the launch (the parallelism the engine can exploit).
    pub num_wgs: usize,
    /// Deterministic simulated throughput (GB/s, paper convention) —
    /// identical for both engines by construction, checked tight.
    pub gbps: f64,
    /// Host milliseconds of the serial engine (min over repeats).
    pub wall_serial_ms: f64,
    /// Host milliseconds of the parallel engine (min over repeats).
    pub wall_parallel_ms: f64,
    /// Host wall gain: serial over parallel (>1 means parallel wins).
    pub wall_gain_x: f64,
}

/// Run-level summary.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Worker threads the parallel engine used.
    pub threads: usize,
    /// Logical cores of the host the run measured.
    pub host_cores: usize,
    /// Timed launches per (workload, engine).
    pub repeats: usize,
    /// Total serial host milliseconds across workloads.
    pub wall_serial_ms: f64,
    /// Total parallel host milliseconds across workloads.
    pub wall_parallel_ms: f64,
    /// Aggregate host wall gain: total serial over total parallel.
    pub wall_gain_x: f64,
    /// Host wall gain of the 3-stage pipeline workload alone (0.0 when
    /// the workload set carries no staged row — e.g. unit tests).
    pub wall_gain_staged_x: f64,
    /// Every workload's parallel run was bit-identical to serial
    /// (memory + stats); the run aborts otherwise, so this is always
    /// `true` in an archived report — kept explicit for honesty.
    pub bit_identical: bool,
}

/// A boxed launcher: builds its kernel against a fresh sim and launches.
type Launch = Box<dyn Fn(&mut Sim) -> KernelStats>;

/// One benchmark workload: a name, the payload initializer, and the
/// launcher (runs against a freshly initialized sim every repeat).
/// Fields stay private so every workload keeps the
/// fresh-sim-per-repeat contract.
pub struct Workload {
    name: String,
    /// Payload words — the buffer the identity assertion compares.
    words: usize,
    /// Extra capacity beyond the payload (e.g. global flag words) that
    /// the launcher allocates but the comparison ignores.
    extra_words: usize,
    launch: Launch,
}

fn bs_workload(instances: usize, rows: usize, cols: usize) -> Workload {
    let op = InstancedTranspose::new(instances, rows, cols, 1);
    let words = op.total_len();
    Workload {
        name: format!("BS {instances}x{rows}x{cols}"),
        words,
        extra_words: 0,
        launch: Box::new(move |sim| {
            let data = sim.alloc(words);
            sim.upload_u32(data, &(0..words as u32).collect::<Vec<_>>());
            let k = BsKernel { data, instances, rows, cols, super_size: 1, wg_size: 256 };
            sim.launch(&k).expect("bs launch")
        }),
    }
}

fn p010_workload(instances: usize, rows: usize, cols: usize) -> Workload {
    let op = InstancedTranspose::new(instances, rows, cols, 1);
    let words = op.total_len();
    Workload {
        name: format!("010! {instances}x{rows}x{cols}"),
        words,
        extra_words: 0,
        launch: Box::new(move |sim| {
            let data = sim.alloc(words);
            sim.upload_u32(data, &(0..words as u32).collect::<Vec<_>>());
            let k = Pttwac010 {
                data,
                instances,
                rows,
                cols,
                wg_size: 256,
                flags: FlagLayout::SpreadPadded { factor: 8 },
                backoff: None,
            };
            sim.launch(&k).expect("010 launch")
        }),
    }
}

fn coprime_workload(rows: usize, cols: usize) -> Workload {
    let words = rows * cols;
    Workload {
        name: format!("coprime {rows}x{cols}"),
        words,
        extra_words: 0,
        launch: Box::new(move |sim| {
            let data = sim.alloc(words);
            sim.upload_u32(data, &(0..words as u32).collect::<Vec<_>>());
            let row = CoprimeRowScramble::new(data, rows, cols, 128);
            let mut stats = sim.launch(&row).expect("coprime-row launch");
            let col = CoprimeColShuffle { data, rows, cols, wg_size: 128 };
            let s2 = sim.launch(&col).expect("coprime-col launch");
            // Fold stage 2 into one report (sum of times; the memory image
            // is what the identity assertion compares).
            stats.time_s += s2.time_s;
            stats.warp_steps += s2.warp_steps;
            stats
        }),
    }
}

/// A `100!` workload — the cross-WG-claims kernel that rides the
/// parallel engine via the control-replay scheme (one row per variant).
fn p100_workload(
    instances: usize,
    rows: usize,
    cols: usize,
    super_size: usize,
    variant: Variant100,
) -> Workload {
    let op = InstancedTranspose::new(instances, rows, cols, super_size);
    let words = op.total_len();
    let flag_words = Pttwac100::flag_words(instances * rows * cols);
    let label = match variant {
        Variant100::SungWorkGroup => "sung",
        Variant100::WarpLocalTile => "local",
        Variant100::WarpRegTile => "reg",
        Variant100::Auto => "auto",
    };
    Workload {
        name: format!("100! {label} {instances}x{rows}x{cols}s{super_size}"),
        words,
        extra_words: flag_words,
        launch: Box::new(move |sim| {
            let data = sim.alloc(words);
            sim.upload_u32(data, &(0..words as u32).collect::<Vec<_>>());
            let flags = sim.alloc(flag_words);
            sim.upload_u32(flags, &vec![0u32; flag_words]);
            let k = Pttwac100 {
                data,
                flags,
                instances,
                rows,
                cols,
                super_size,
                variant,
                wg_size: 256,
                fuse_tile: None,
                backoff: None,
            };
            sim.launch(&k).expect("100 launch")
        }),
    }
}

/// The paper's full 3-stage pipeline (`100! → 0010! → 0100!`) as one
/// workload: stages 1 and 3 are cross-WG-claims kernels, stage 2 is
/// work-group-local, so the whole plan exercises both parallel paths.
/// Per-stage stats are folded into one report for the identity check.
fn staged_workload(rows: usize, cols: usize) -> Workload {
    let tile = TileConfig::new(48, 36);
    let plan = StagePlan::three_stage(rows, cols, tile).expect("tile divides staged shape");
    let words = rows * cols;
    let flag_words = plan_flag_words(&plan);
    Workload {
        name: format!("3-stage {rows}x{cols}"),
        words,
        extra_words: flag_words,
        launch: Box::new(move |sim| {
            let data = sim.alloc(words);
            sim.upload_u32(data, &(0..words as u32).collect::<Vec<_>>());
            let flags = sim.alloc(flag_words);
            sim.upload_u32(flags, &vec![0u32; flag_words]);
            let opts = GpuOptions::tuned_for(sim.device());
            let pipe = run_plan(sim, data, flags, &plan, &opts).expect("staged plan launches");
            // Fold the per-stage reports into one (sums of time and
            // counters, max of the longest chain); the memory image is
            // what the identity assertion compares.
            let mut folded = pipe.stages[0].clone();
            folded.name = format!("3-stage {rows}x{cols}");
            for s in &pipe.stages[1..] {
                // Widest stage describes the launch shape (a degenerate
                // stage may have been skipped with zero work-groups).
                folded.num_wgs = folded.num_wgs.max(s.num_wgs);
                folded.wg_size = folded.wg_size.max(s.wg_size);
                folded.time_s += s.time_s;
                folded.dram_bytes += s.dram_bytes;
                folded.useful_bytes += s.useful_bytes;
                folded.gld_transactions += s.gld_transactions;
                folded.gst_transactions += s.gst_transactions;
                folded.local_accesses += s.local_accesses;
                folded.local_atomics += s.local_atomics;
                folded.global_atomics += s.global_atomics;
                folded.position_conflicts += s.position_conflicts;
                folded.lock_conflicts += s.lock_conflicts;
                folded.bank_conflicts += s.bank_conflicts;
                folded.claim_retries += s.claim_retries;
                folded.barriers += s.barriers;
                folded.warp_steps += s.warp_steps;
                folded.total_chain_cycles += s.total_chain_cycles;
                folded.max_chain_cycles = folded.max_chain_cycles.max(s.max_chain_cycles);
            }
            folded
        }),
    }
}

fn workloads(scale: Scale) -> Vec<Workload> {
    match scale {
        Scale::Full => vec![
            bs_workload(2048, 32, 32),
            p010_workload(1024, 32, 32),
            coprime_workload(997, 1024),
            p100_workload(1, 128, 96, 64, Variant100::SungWorkGroup),
            p100_workload(1, 128, 96, 64, Variant100::WarpLocalTile),
            p100_workload(1, 128, 96, 64, Variant100::WarpRegTile),
            staged_workload(1440, 360),
        ],
        Scale::Reduced => vec![
            bs_workload(512, 32, 32),
            p010_workload(256, 32, 32),
            coprime_workload(251, 256),
            p100_workload(1, 64, 48, 32, Variant100::SungWorkGroup),
            p100_workload(1, 64, 48, 32, Variant100::WarpLocalTile),
            p100_workload(1, 64, 48, 32, Variant100::WarpRegTile),
            staged_workload(720, 180),
        ],
    }
}

/// Launch `w` under `engine`, `repeats` times from identical initial
/// state. Returns the (deterministic) stats and memory of the last run
/// and the minimum wall seconds of the launch itself.
fn time_engine(
    dev: &DeviceSpec,
    w: &Workload,
    engine: EngineMode,
    repeats: usize,
) -> (KernelStats, Vec<u32>, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let mut sim = Sim::new(dev.clone(), w.words + w.extra_words + 64);
        sim.set_engine_mode(engine);
        let t0 = std::time::Instant::now();
        let stats = (w.launch)(&mut sim);
        best = best.min(t0.elapsed().as_secs_f64());
        let buf_all = gpu_sim::Buffer { base: 0, len: w.words };
        last = Some((stats, sim.download_u32(buf_all)));
    }
    let (stats, mem) = last.expect("at least one repeat");
    (stats, mem, best)
}

/// Run the engine wall-clock experiment.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<Row>, Summary) {
    run_sized(dev, &workloads(scale), REPEATS)
}

/// [`run`] over explicit workloads (tests use tiny ones).
///
/// # Panics
/// Panics if any workload's parallel run is not bit-identical to its
/// serial run — an engine that diverges must never produce an archive.
#[must_use]
pub fn run_sized(dev: &DeviceSpec, workloads: &[Workload], repeats: usize) -> (Vec<Row>, Summary) {
    let parallel = EngineMode::parallel_auto();
    let threads = parallel.resolved_threads();
    let mut rows = Vec::with_capacity(workloads.len());
    let (mut total_serial, mut total_parallel) = (0.0f64, 0.0f64);
    for w in workloads {
        let (s_stats, s_mem, s_wall) = time_engine(dev, w, EngineMode::Serial, repeats);
        let (p_stats, p_mem, p_wall) = time_engine(dev, w, parallel, repeats);
        assert_eq!(s_mem, p_mem, "{}: engines diverged on memory", w.name);
        assert_eq!(s_stats, p_stats, "{}: engines diverged on stats", w.name);
        total_serial += s_wall;
        total_parallel += p_wall;
        let bytes = w.words as f64 * 4.0;
        rows.push(Row {
            workload: w.name.clone(),
            num_wgs: s_stats.num_wgs,
            gbps: 2.0 * bytes / s_stats.time_s / 1e9,
            wall_serial_ms: s_wall * 1e3,
            wall_parallel_ms: p_wall * 1e3,
            wall_gain_x: if p_wall > 0.0 { s_wall / p_wall } else { 0.0 },
        });
    }
    let summary = Summary {
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        repeats: repeats.max(1),
        wall_serial_ms: total_serial * 1e3,
        wall_parallel_ms: total_parallel * 1e3,
        wall_gain_x: if total_parallel > 0.0 { total_serial / total_parallel } else { 0.0 },
        wall_gain_staged_x: rows
            .iter()
            .find(|r| r.workload.starts_with("3-stage"))
            .map_or(0.0, |r| r.wall_gain_x),
        bit_identical: true,
    };
    (rows, summary)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{}", r.num_wgs),
                format!("{:.2}", r.gbps),
                format!("{:.2}", r.wall_serial_ms),
                format!("{:.2}", r.wall_parallel_ms),
                format!("{:.2}x", r.wall_gain_x),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Engineering: parallel vs serial simulation engine (host wall clock)",
        &["workload", "wgs", "sim GB/s", "serial ms", "parallel ms", "gain"],
        &table,
    );
    out.push_str(&format!(
        "\n{} worker threads on {} host cores (best of {} runs): \
         {:.1} ms serial vs {:.1} ms parallel = {:.2}x wall gain \
         ({:.2}x on the 3-stage pipeline); results bit-identical: {}\n",
        summary.threads,
        summary.host_cores,
        summary.repeats,
        summary.wall_serial_ms,
        summary.wall_parallel_ms,
        summary.wall_gain_x,
        summary.wall_gain_staged_x,
        summary.bit_identical,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_report_is_sane() {
        // Tiny workloads: this asserts bit-identity inside run_sized and
        // sanity of the report plumbing, not speedup (the test host may
        // have one core).
        let dev = DeviceSpec::tesla_k20();
        let tiny = vec![
            bs_workload(8, 8, 8),
            p010_workload(4, 6, 5),
            coprime_workload(9, 8),
            p100_workload(1, 6, 4, 3, Variant100::SungWorkGroup),
            p100_workload(1, 6, 4, 3, Variant100::WarpLocalTile),
            p100_workload(1, 6, 4, 4, Variant100::WarpRegTile),
            staged_workload(96, 72),
        ];
        let (rows, summary) = run_sized(&dev, &tiny, 1);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.gbps > 0.0, "{}: simulated throughput must be positive", r.workload);
            assert!(r.wall_serial_ms > 0.0 && r.wall_parallel_ms > 0.0);
            assert!(r.num_wgs > 0, "{}: zero work-groups", r.workload);
        }
        assert!(summary.bit_identical);
        assert!(summary.threads >= 1);
        assert!(summary.wall_gain_x > 0.0);
        assert!(
            summary.wall_gain_staged_x > 0.0,
            "the staged row must feed the staged summary gain"
        );
        let text = render(&rows, &summary);
        assert!(text.contains("bit-identical: true"), "{text}");
        assert!(text.contains("3-stage pipeline"), "{text}");
    }

    #[test]
    fn wall_metrics_live_on_the_wall_channel_only() {
        // The wall-clock columns must reach the checker through the
        // `wall_` channel and never through the tight gbps/speedup one.
        let dev = DeviceSpec::tesla_k20();
        let (rows, summary) = run_sized(&dev, &[bs_workload(4, 8, 8)], 1);
        let v = (&rows, &summary).to_value();
        let sim_paths: Vec<String> =
            ipt_obs::extract_metrics(&v).into_iter().map(|m| m.path).collect();
        assert_eq!(sim_paths, vec!["0/0/gbps"], "only the simulated column is tight-gated");
        let wall_paths: Vec<String> =
            ipt_obs::extract_wall_metrics(&v).into_iter().map(|m| m.path).collect();
        assert!(
            wall_paths.contains(&"1/wall_gain_x".to_string()),
            "summary wall gain must be wall-gated: {wall_paths:?}"
        );
        assert!(
            wall_paths.contains(&"1/wall_gain_staged_x".to_string()),
            "staged wall gain must be wall-gated too: {wall_paths:?}"
        );
    }
}
