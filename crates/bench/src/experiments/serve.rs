//! **Extension** — the batched, plan-cached serving layer end to end.
//!
//! Drives `ipt_gpu::serve` with a deterministic mixed stream of 1000
//! transpose requests spanning every planning scheme (staged, square,
//! prime-square, identity, coprime, wide-element), processed in bounded
//! admission rounds across two simulated devices. Reports per-shape-class
//! deterministic throughput (DES time — checkable by `repro --check`) plus
//! the serving economics: plan-cache hit rate, batch occupancy, queue
//! wait, and the wall-clock amortization factor against the per-request
//! autotuning baseline (`cache_plans = false`, measured on a prefix
//! subsample so one run stays tractable).
//!
//! Wall-clock quantities (`throughput_rps`, `amortization_x`) are host
//! timings and deliberately avoid the `gbps`/`speedup` metric naming, so
//! the regression checker never compares non-deterministic numbers.

use crate::workloads::{serve_mix, Scale};
use gpu_sim::DeviceSpec;
use ipt_core::check::bytes_f64;
use ipt_gpu::serve::{PriorityClass, ServeConfig, ServeRequest, Server};
use ipt_gpu::TransposeError;
use ipt_obs::TraceRecorder;
use serde::Serialize;

/// Requests in the full stream.
pub const STREAM_LEN: usize = 1000;
/// Requests admitted per round (under the admission bound).
pub const ROUND_SIZE: usize = 50;
/// Prefix of the stream replayed through the no-cache baseline server.
pub const BASELINE_SAMPLE: usize = 40;

/// One shape-class row of the report.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// `rows x cols` of the class.
    pub shape: String,
    /// Element width in bytes.
    pub elem_bytes: usize,
    /// Scheme the planner routed the class to.
    pub scheme: &'static str,
    /// Requests of this class in the stream.
    pub requests: usize,
    /// Of those, how many were served from a cached plan.
    pub cache_hits: usize,
    /// Deterministic device-side throughput (GB/s, paper convention;
    /// 0 for the identity short-circuit which never launches).
    pub gbps: f64,
    /// Mean simulated queue wait, microseconds.
    pub mean_wait_us: f64,
}

/// Stream-level summary.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Total requests served.
    pub requests: usize,
    /// Distinct shape classes in the stream.
    pub classes: usize,
    /// Admission rounds processed.
    pub rounds: usize,
    /// Fraction of requests whose plan came from the cache.
    pub hit_rate: f64,
    /// Mean requests per launched batch.
    pub mean_occupancy: f64,
    /// Simulated end-to-end service seconds of the whole stream.
    pub sim_total_s: f64,
    /// Deterministic aggregate throughput over the simulated timeline
    /// (GB/s, paper convention, non-identity traffic).
    pub effective_gbps: f64,
    /// Requests that flowed through a non-primary recovery path.
    pub recovered: usize,
    /// Wall-clock requests/second of the cached server (host timing —
    /// not a checked metric).
    pub throughput_rps: f64,
    /// Requests replayed through the per-request-autotune baseline.
    pub baseline_requests: usize,
    /// Wall-clock seconds per request, cached vs baseline (host timing).
    pub cached_s_per_req: f64,
    /// Baseline wall-clock seconds per request (host timing).
    pub baseline_s_per_req: f64,
    /// Amortization factor: baseline wall per request over cached wall
    /// per request (host timing — not a checked metric).
    pub amortization_x: f64,
}

/// Deterministic request stream: `n` requests over the scale's shape mix,
/// class-picked by a fixed LCG, payloads derived from the request id.
#[must_use]
pub fn request_stream(scale: Scale, n: usize) -> Vec<ServeRequest> {
    let mix = serve_mix(scale);
    let mut state: u64 = 0xC0FF_EE11_D00D_F00D;
    (0..n as u64)
        .map(|id| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let (rows, cols, elem_bytes) = mix[(state >> 33) as usize % mix.len()];
            let words = rows * cols * (elem_bytes / 4);
            let data = (0..words as u32)
                .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(id as u32))
                .collect();
            ServeRequest { id, rows, cols, elem_bytes, priority: PriorityClass::Batch, data }
        })
        .collect()
}

/// Drive `stream` through one server in rounds, collecting results.
/// Backpressure is part of the protocol: a refused submit drains a round
/// and retries.
fn drive(
    srv: &mut Server,
    stream: &[ServeRequest],
    round_size: usize,
    rec: &TraceRecorder,
) -> (Vec<ipt_gpu::serve::ServedResult>, usize, f64, f64, f64) {
    let mut results = Vec::with_capacity(stream.len());
    let mut rounds = 0usize;
    let mut occupancy_sum = 0.0;
    let mut batches = 0usize;
    let mut sim_total = 0.0;
    let mut in_round = 0usize;
    for req in stream {
        loop {
            match srv.submit(req.clone(), rec) {
                Ok(()) => break,
                Err(TransposeError::Backpressure { .. }) => {
                    let r = srv.process_round(rec).expect("round");
                    rounds += 1;
                    occupancy_sum += r.mean_occupancy * r.batches as f64;
                    batches += r.batches;
                    sim_total += r.sim_total_s;
                    results.extend(r.results);
                    in_round = 0;
                }
                Err(e) => panic!("stream request refused: {e}"),
            }
        }
        in_round += 1;
        if in_round >= round_size {
            let r = srv.process_round(rec).expect("round");
            rounds += 1;
            occupancy_sum += r.mean_occupancy * r.batches as f64;
            batches += r.batches;
            sim_total += r.sim_total_s;
            results.extend(r.results);
            in_round = 0;
        }
    }
    if srv.backlog() > 0 {
        let r = srv.process_round(rec).expect("final round");
        rounds += 1;
        occupancy_sum += r.mean_occupancy * r.batches as f64;
        batches += r.batches;
        sim_total += r.sim_total_s;
        results.extend(r.results);
    }
    let mean_occ = if batches == 0 { 0.0 } else { occupancy_sum / batches as f64 };
    (results, rounds, mean_occ, sim_total, batches as f64)
}

/// Run the serving-layer experiment.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<Row>, Summary) {
    run_sized(dev, scale, STREAM_LEN, ROUND_SIZE, BASELINE_SAMPLE)
}

/// [`run`] with explicit stream sizing (tests use a shorter stream).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_sized(
    dev: &DeviceSpec,
    scale: Scale,
    stream_len: usize,
    round_size: usize,
    baseline_sample: usize,
) -> (Vec<Row>, Summary) {
    let stream = request_stream(scale, stream_len);
    let rec = TraceRecorder::new();

    // Cached server over the full stream (wall-clocked).
    let mut srv = Server::new(dev.clone(), ServeConfig::new(dev));
    let t0 = std::time::Instant::now();
    let (results, rounds, mean_occupancy, sim_total_s, _) =
        drive(&mut srv, &stream, round_size, &rec);
    let cached_wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(results.len(), stream.len(), "every admitted request must complete");

    // Per-request-autotune baseline on a deterministic prefix subsample.
    let mut base_cfg = ServeConfig::new(dev);
    base_cfg.cache_plans = false;
    let mut base_srv = Server::new(dev.clone(), base_cfg);
    let base_n = baseline_sample.min(stream.len());
    let t0 = std::time::Instant::now();
    let _ = drive(&mut base_srv, &stream[..base_n], round_size, &TraceRecorder::new());
    let baseline_wall_s = t0.elapsed().as_secs_f64();

    // Aggregate per shape class, preserving first-appearance order.
    let mut rows: Vec<Row> = Vec::new();
    let mut service_s: Vec<f64> = Vec::new();
    let mut bytes: Vec<f64> = Vec::new();
    let mut waits: Vec<f64> = Vec::new();
    let mut recovered = 0usize;
    for res in &results {
        let req = &stream[res.id as usize];
        let shape = format!("{}x{}", req.rows, req.cols);
        let idx = match rows
            .iter()
            .position(|r| r.shape == shape && r.elem_bytes == req.elem_bytes)
        {
            Some(i) => i,
            None => {
                rows.push(Row {
                    shape,
                    elem_bytes: req.elem_bytes,
                    scheme: res.scheme.name(),
                    requests: 0,
                    cache_hits: 0,
                    gbps: 0.0,
                    mean_wait_us: 0.0,
                });
                service_s.push(0.0);
                bytes.push(0.0);
                waits.push(0.0);
                rows.len() - 1
            }
        };
        rows[idx].requests += 1;
        rows[idx].cache_hits += usize::from(res.cache_hit);
        service_s[idx] += res.service_s;
        bytes[idx] += bytes_f64(req.rows, req.cols, req.elem_bytes);
        waits[idx] += res.queue_wait_s * 1e6;
        recovered += usize::from(!res.recovery.clean());
    }
    for (i, row) in rows.iter_mut().enumerate() {
        row.gbps = if service_s[i] > 0.0 { 2.0 * bytes[i] / service_s[i] / 1e9 } else { 0.0 };
        row.mean_wait_us = waits[i] / row.requests.max(1) as f64;
    }

    let hits: usize = rows.iter().map(|r| r.cache_hits).sum();
    let launched_bytes: f64 = (0..rows.len())
        .filter(|&i| service_s[i] > 0.0)
        .map(|i| bytes[i])
        .sum();
    let cached_s_per_req = cached_wall_s / results.len() as f64;
    let baseline_s_per_req = baseline_wall_s / base_n.max(1) as f64;
    let summary = Summary {
        requests: results.len(),
        classes: rows.len(),
        rounds,
        hit_rate: hits as f64 / results.len() as f64,
        mean_occupancy,
        sim_total_s,
        effective_gbps: if sim_total_s > 0.0 {
            2.0 * launched_bytes / sim_total_s / 1e9
        } else {
            0.0
        },
        recovered,
        throughput_rps: if cached_wall_s > 0.0 {
            results.len() as f64 / cached_wall_s
        } else {
            0.0
        },
        baseline_requests: base_n,
        cached_s_per_req,
        baseline_s_per_req,
        amortization_x: if cached_s_per_req > 0.0 {
            baseline_s_per_req / cached_s_per_req
        } else {
            0.0
        },
    };
    (rows, summary)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shape.clone(),
                format!("{}B", r.elem_bytes),
                r.scheme.to_string(),
                format!("{}", r.requests),
                format!("{}", r.cache_hits),
                format!("{:.2}", r.gbps),
                format!("{:.1}", r.mean_wait_us),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Extension: batched plan-cached serving (mixed request stream)",
        &["shape", "elem", "scheme", "reqs", "hits", "GB/s", "wait us"],
        &table,
    );
    out.push_str(&format!(
        "\n{} requests over {} shape classes in {} rounds: plan-cache hit rate {:.1}%, \
         mean batch occupancy {:.2}\n\
         simulated service {:.2} ms end-to-end ({:.2} GB/s effective), {} recovered requests\n\
         wall clock: {:.0} req/s cached; per-request autotune baseline ({} reqs) \
         is {:.1}x slower per request\n",
        summary.requests,
        summary.classes,
        summary.rounds,
        summary.hit_rate * 100.0,
        summary.mean_occupancy,
        summary.sim_total_s * 1e3,
        summary.effective_gbps,
        summary.recovered,
        summary.throughput_rps,
        summary.baseline_requests,
        summary.amortization_x,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipt_gpu::host_transpose_elems;

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let a = request_stream(Scale::Reduced, 64);
        let b = request_stream(Scale::Reduced, 64);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.rows, x.cols, x.elem_bytes), (y.rows, y.cols, y.elem_bytes));
            assert_eq!(x.data, y.data);
        }
        let classes: std::collections::HashSet<(usize, usize, usize)> =
            a.iter().map(|r| (r.rows, r.cols, r.elem_bytes)).collect();
        assert!(classes.len() >= 6, "64 draws must cover most of the mix");
    }

    #[test]
    fn acceptance_amortization_and_hit_rate() {
        // The ISSUE acceptance criteria on a shortened stream: ≥5x wall
        // amortization over per-request autotuning and ≥90% plan-cache
        // hit rate. 300 requests in rounds of 25 gives 12 rounds, so only
        // the cold first appearances miss.
        let dev = DeviceSpec::tesla_k20();
        let (rows, summary) = run_sized(&dev, Scale::Reduced, 300, 25, 20);
        assert_eq!(summary.requests, 300);
        assert!(
            summary.hit_rate >= 0.90,
            "hit rate {:.3} must be >= 0.90",
            summary.hit_rate
        );
        assert!(
            summary.amortization_x >= 5.0,
            "plan caching must amortize >= 5x over per-request autotune, got {:.1}x",
            summary.amortization_x
        );
        assert!(summary.mean_occupancy > 1.0, "same-shape requests must batch");
        assert!(summary.effective_gbps > 0.0 && summary.sim_total_s > 0.0);
        // Every scheme class appears and carries sane accounting.
        let schemes: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.scheme).collect();
        // Prime shapes route to the C2R decomposition now, not coprime
        // cycle-following.
        for s in ["staged", "square-tiled", "identity", "c2r"] {
            assert!(schemes.contains(s), "mix must exercise {s}: {schemes:?}");
        }
        for r in &rows {
            assert!(r.cache_hits <= r.requests);
        }
    }

    #[test]
    fn served_results_round_trip_against_host_reference() {
        let dev = DeviceSpec::tesla_k20();
        let stream = request_stream(Scale::Reduced, 40);
        let mut srv = Server::new(dev.clone(), ServeConfig::new(&dev));
        let rec = TraceRecorder::new();
        let (results, ..) = drive(&mut srv, &stream, 10, &rec);
        assert_eq!(results.len(), 40);
        for res in &results {
            let req = &stream[res.id as usize];
            if req.rows <= 1 || req.cols <= 1 {
                assert_eq!(res.data, req.data, "identity moves nothing");
            } else {
                let want =
                    host_transpose_elems(&req.data, req.rows, req.cols, req.elem_bytes / 4);
                assert_eq!(res.data, want, "request {} ({}x{})", res.id, req.rows, req.cols);
            }
        }
    }
}
