//! **§7.6** — overlapping stages 2–3 with the D2H transfer: asynchronous
//! execution with Q command queues.
//!
//! Paper: async beats sync by 9 % on average / 24 % max over all tested
//! configurations; the best Q is typically under 8 (queue-creation
//! overhead); best-configuration effective throughput rises from 2.87 to
//! 3.43 GB/s (+19 %) — >20 % over GKK on the CPU.

use crate::workloads::{async_sizes, Scale};
use gpu_sim::DeviceSpec;
use ipt_core::stages::StagePlan;
use ipt_gpu::host::{run_host_async, run_host_sync};
use ipt_gpu::opts::GpuOptions;
use serde::Serialize;

/// One (size, Q) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Matrix shape.
    pub rows: usize,
    /// Matrix shape.
    pub cols: usize,
    /// Command queues (1 = synchronous).
    pub q: usize,
    /// Effective throughput from the CPU's perspective (GB/s).
    pub effective_gbps: f64,
    /// Total time (s).
    pub total_s: f64,
}

/// Aggregates matching the paper's §7.6 claims.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Mean async-over-sync improvement across sizes and Q > 1.
    pub avg_improvement: f64,
    /// Max improvement.
    pub max_improvement: f64,
    /// Best Q per size.
    pub best_q: Vec<(usize, usize, usize)>,
    /// Mean best-Q effective throughput (GB/s).
    pub best_effective_gbps: f64,
    /// Mean sync effective throughput (GB/s).
    pub sync_effective_gbps: f64,
}

/// Q values exercised.
pub const QS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Run the experiment.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<Row>, Summary) {
    let opts = GpuOptions::tuned_for(dev);
    let mut rows = Vec::new();
    for (r, c) in async_sizes(scale) {
        let tile = super::table2::tile3_for(r, c, Scale::Full);
        let plan = StagePlan::three_stage(r, c, tile).expect("tile divides");
        let sync = run_host_sync(dev, r, c, &plan, &opts).expect("sync run");
        rows.push(Row {
            rows: r,
            cols: c,
            q: 1,
            effective_gbps: sync.effective_gbps,
            total_s: sync.total_s,
        });
        for q in QS.into_iter().skip(1) {
            let rep = run_host_async(dev, r, c, &plan, &opts, q).expect("async run");
            rows.push(Row {
                rows: r,
                cols: c,
                q,
                effective_gbps: rep.effective_gbps,
                total_s: rep.total_s,
            });
        }
    }
    let summary = summarise(&rows);
    (rows, summary)
}

/// Compute the paper-style aggregates.
#[must_use]
pub fn summarise(rows: &[Row]) -> Summary {
    let mut improvements = Vec::new();
    let mut best_q = Vec::new();
    let mut best_eff = Vec::new();
    let mut sync_eff = Vec::new();
    let mut sizes: Vec<(usize, usize)> = rows.iter().map(|r| (r.rows, r.cols)).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for (r, c) in sizes {
        let group: Vec<&Row> = rows.iter().filter(|x| x.rows == r && x.cols == c).collect();
        let sync = group.iter().find(|x| x.q == 1).expect("sync row");
        sync_eff.push(sync.effective_gbps);
        let best = group
            .iter()
            .max_by(|a, b| a.effective_gbps.total_cmp(&b.effective_gbps))
            .expect("non-empty");
        best_q.push((r, c, best.q));
        best_eff.push(best.effective_gbps);
        for x in group.iter().filter(|x| x.q > 1) {
            improvements.push(x.effective_gbps / sync.effective_gbps - 1.0);
        }
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    Summary {
        avg_improvement: mean(&improvements),
        max_improvement: improvements.iter().copied().fold(0.0, f64::max),
        best_q,
        best_effective_gbps: mean(&best_eff),
        sync_effective_gbps: mean(&sync_eff),
    }
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], s: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.rows, r.cols),
                r.q.to_string(),
                format!("{:.3}", r.effective_gbps),
                format!("{:.2}", r.total_s * 1e3),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "S7.6: asynchronous execution (Q command queues)",
        &["matrix", "Q", "eff GB/s", "total ms"],
        &table,
    );
    out.push_str(&format!(
        "\nasync improvement: avg {:+.1}% / max {:+.1}%   [paper: +9% avg / +24% max]\n\
         best-Q effective: {:.2} GB/s vs sync {:.2} GB/s ({:+.1}%)  [paper: 3.43 vs 2.87, +19%]\n\
         best Q per size: {:?}  [paper: typically < 8]\n",
        s.avg_improvement * 100.0,
        s.max_improvement * 100.0,
        s.best_effective_gbps,
        s.sync_effective_gbps,
        (s.best_effective_gbps / s.sync_effective_gbps - 1.0) * 100.0,
        s.best_q.iter().map(|&(_, _, q)| q).collect::<Vec<_>>(),
    ));
    out
}
