//! **Ablation study** — which simulator mechanism drives which paper
//! result (the design choices DESIGN.md §2 calls out).
//!
//! Each ablation disables one modelled mechanism of the K20 preset and
//! re-measures three anchors:
//!
//! * the **Fig. 6** anchor: spreading speedup of PTTWAC 010! (driven by
//!   the atomic position-conflict serialisation),
//! * the **§7.3** anchor: `100!` throughput ratio tile-64 / tile-8
//!   (driven by latency amortisation over super-element size),
//! * the **Table 2** anchor: 3-stage / 4-stage speedup (driven by the
//!   tile-size effects end-to-end).
//!
//! A mechanism matters for a result exactly when its ablation moves that
//! anchor toward 1.0.

use crate::common::{run_010, run_100};
use crate::workloads::Scale;
use gpu_sim::DeviceSpec;
use ipt_core::stages::StagePlan;
use ipt_core::Matrix;
use ipt_gpu::opts::{FlagLayout, GpuOptions, Variant100};
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use serde::Serialize;

/// One ablated configuration's anchors.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Which mechanism was knocked out.
    pub ablation: String,
    /// Fig. 6 anchor: packed-time / spread8-time.
    pub spreading_speedup: f64,
    /// §7.3 anchor: tile-64 GB/s / tile-8 GB/s.
    pub tile_dominance: f64,
    /// Table 2 anchor: 3-stage GB/s / 4-stage GB/s.
    pub staged_speedup: f64,
}

/// The ablations: name + device mutation.
#[must_use]
pub fn variants() -> Vec<(&'static str, DeviceSpec)> {
    let base = DeviceSpec::tesla_k20();
    let mut no_atomic_port = base.clone();
    no_atomic_port.lat_atomic_rmw = 1.0;
    let mut no_mlp = base.clone();
    no_mlp.mlp_transactions = 1.0;
    let mut no_bw_gate = base.clone();
    no_bw_gate.bw_saturation_occupancy = 1e-9;
    let mut no_ecc = base.clone();
    no_ecc.dram_efficiency = 1.0;
    let mut coarse_txn = base.clone();
    coarse_txn.transaction_bytes = 128;
    let mut free_local = base.clone();
    free_local.lat_local = 0.0;
    free_local.lat_local_atomic = 0.0;
    vec![
        ("baseline (full model)", base),
        ("no atomic port serialisation (lat_atomic_rmw=1)", no_atomic_port),
        ("no memory-level parallelism (mlp=1)", no_mlp),
        ("no occupancy-gated bandwidth", no_bw_gate),
        ("no DRAM ECC derate", no_ecc),
        ("128-byte transactions (pre-Kepler coalescing)", coarse_txn),
        ("free local memory", free_local),
    ]
}

fn anchors(dev: &DeviceSpec) -> (f64, f64, f64) {
    // Fig. 6 anchor: the n=64 power-of-two-chase input.
    let (packed, _) = run_010(dev, 128, 16, 64, 256, FlagLayout::Packed);
    let (spread, _) = run_010(dev, 128, 16, 64, 256, FlagLayout::SpreadPadded { factor: 8 });
    let spreading = packed.time_s / spread.time_s;

    // §7.3 anchor.
    let wg = GpuOptions::tuned_for(dev).wg_size_100;
    let (t8, b8) = run_100(dev, 64, 50, 8, Variant100::Auto, wg);
    let (t64, b64) = run_100(dev, 64, 50, 64, Variant100::Auto, wg);
    let dominance = t64.throughput_gbps(b64) / t8.throughput_gbps(b8);

    // Table 2 anchor (reduced size).
    let (rows, cols) = (1440usize, 360usize);
    let opts = GpuOptions::tuned_for(dev);
    let run_plan_time = |plan: &StagePlan| {
        let mut sim = gpu_sim::Sim::new(dev.clone(), rows * cols + plan_flag_words(plan) + 64);
        let mut data = Matrix::iota(rows, cols).into_vec();
        transpose_on_device(&mut sim, &mut data, rows, cols, plan, &opts)
            .expect("plan runs")
            .time_s()
    };
    let t3 = run_plan_time(
        &StagePlan::three_stage(rows, cols, super::table2::tile3_for(rows, cols, Scale::Reduced))
            .expect("tile divides"),
    );
    let t4 = run_plan_time(
        &StagePlan::four_stage(rows, cols, super::table2::tile4_for(rows, cols))
            .expect("tile divides"),
    );
    (spreading, dominance, t4 / t3)
}

/// Run every ablation.
#[must_use]
pub fn run() -> Vec<Row> {
    variants()
        .into_iter()
        .map(|(name, dev)| {
            let (spreading_speedup, tile_dominance, staged_speedup) = anchors(&dev);
            Row { ablation: name.to_string(), spreading_speedup, tile_dominance, staged_speedup }
        })
        .collect()
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.ablation.clone(),
                format!("x{:.2}", r.spreading_speedup),
                format!("x{:.2}", r.tile_dominance),
                format!("x{:.2}", r.staged_speedup),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Ablation: which cost-model mechanism drives which result (K20 anchors)",
        &["ablation", "Fig6 spread", "S7.3 tile 64/8", "Table2 3s/4s"],
        &table,
    );
    out.push_str(
        "\nreading: an anchor collapsing toward x1.0 under an ablation means that\n\
         mechanism is what produces the corresponding paper result in this model.\n",
    );
    out
}
