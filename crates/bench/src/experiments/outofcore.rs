//! **Robustness + performance gate** — out-of-core streaming transposition.
//!
//! Two parts, both deterministic:
//!
//! 1. **Overlap-efficiency gate (fault-free).** A matrix ~3× the configured
//!    device-memory budget streams through `ipt_gpu::stream` in
//!    double-buffered row-band chunks. Achieved throughput must reach
//!    [`EFFICIENCY_FLOOR`] of the snippet-3 roofline
//!    (`roofline_s = max(Σ H2D, Σ D2H, Σ kernel)`): the stream must
//!    actually overlap uploads, kernels and downloads, not merely finish.
//!
//! 2. **Mid-stream fault campaign.** [`CAMPAIGN_RUNS`] seeded runs cycle
//!    through three chaos modes — sustained per-direction transfer faults,
//!    a kernel abort inside one chunk, and an engine crash at 40% of
//!    committed progress with a journal-driven resume. Every run must
//!    produce a bit-identical result with every chunk committed exactly
//!    through the journal: zero data loss, zero torn matrices, zero silent
//!    re-commits. Mismatch/uncommitted counts report on the `slo_` channel
//!    (lower-is-better, baseline 0), so any regression fails
//!    `repro --check` outright.

use gpu_sim::fault::{ChaosConfig, ChaosPlan, FaultKind, FaultPlan};
use gpu_sim::DeviceSpec;
use ipt_core::outofcore::plan_chunks;
use ipt_gpu::recover::host_transpose_elems;
use ipt_gpu::stream::{stream_transpose, StreamChaos, StreamConfig, StreamPath};
use serde::Serialize;

use crate::workloads::Scale;

/// Fault-free achieved throughput must be at least this fraction of the
/// bandwidth-bound roofline.
pub const EFFICIENCY_FLOOR: f64 = 0.70;
/// Seeded campaign runs (80 per chaos mode).
pub const CAMPAIGN_RUNS: u64 = 240;
/// Campaign matrix shape (words): small enough for 240 full streaming runs,
/// large enough for 6 chunks under the `total/3` budget.
pub const CAMPAIGN_SHAPE: (usize, usize) = (288, 96);

/// Per-chaos-mode campaign accounting.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ModeRow {
    /// Chaos mode name.
    pub mode: &'static str,
    /// Runs executed in this mode.
    pub runs: u64,
    /// Transient transfer faults injected (and retried).
    pub transfer_faults: u64,
    /// Kernel-pipeline faults recovered inside a chunk.
    pub kernel_faults: u64,
    /// Chunk-granular retries.
    pub chunk_retries: u64,
    /// Degradation-ladder steps (`Overlapped → SingleEngine → HostChunk`).
    pub degradations: u64,
    /// Journal-driven crash-resume sessions.
    pub crash_resumes: u64,
    /// Chunks that finally committed on the host rung.
    pub host_chunks: u64,
    /// Runs whose output differed from the host reference (must be 0).
    pub mismatches: u64,
}

/// Experiment summary. `*gbps` gates on the throughput channel; `slo_*`
/// fields gate lower-is-better against a zero baseline.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Fault-free matrix rows.
    pub rows: usize,
    /// Fault-free matrix cols.
    pub cols: usize,
    /// Device-memory budget, u32 words (the matrix is ~3× this).
    pub budget_words: u64,
    /// Chunks the planner cut the matrix into.
    pub chunks: usize,
    /// Rows per chunk band.
    pub chunk_rows: usize,
    /// Fault-free achieved throughput, GB/s (paper convention).
    pub effective_gbps: f64,
    /// Bandwidth-bound roofline throughput, GB/s.
    pub roofline_gbps: f64,
    /// `roofline_s / total_s` for the fault-free run.
    pub overlap_efficiency: f64,
    /// The gate: `overlap_efficiency` must be ≥ this.
    pub efficiency_floor: f64,
    /// Campaign runs executed.
    pub campaign_runs: u64,
    /// Campaign matrix shape.
    pub campaign_shape: (usize, usize),
    /// Total faults injected across the campaign (all kinds).
    pub faults_injected: u64,
    /// Total chunk retries across the campaign.
    pub chunk_retries: u64,
    /// Total ladder degradations across the campaign.
    pub degradations: u64,
    /// Total crash resumes across the campaign.
    pub crash_resumes: u64,
    /// Campaign outputs that differed from the host reference (gated at
    /// baseline 0 — any value fails `--check`).
    pub slo_mismatches: u64,
    /// Campaign runs that finished with uncommitted journal chunks (gated
    /// at baseline 0).
    pub slo_uncommitted: u64,
    /// Campaign runs that returned a hard error (gated at baseline 0 —
    /// the ladder's host rung means no chaos mode may escalate to one).
    pub slo_errors: u64,
    /// Did the experiment meet its floors (efficiency ≥ floor, zero
    /// mismatches / uncommitted chunks / errors)?
    pub passed: bool,
}

/// Deterministic payload for campaign run `seed`.
fn campaign_data(seed: u64) -> Vec<u32> {
    let (r, c) = CAMPAIGN_SHAPE;
    (0..(r * c) as u32).map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(seed as u32)).collect()
}

/// Chaos mode of campaign run `seed`: round-robin over the three
/// fault families the stream must survive.
fn campaign_chaos(seed: u64, num_chunks: usize) -> (&'static str, StreamChaos) {
    match seed % 3 {
        0 => (
            "transfer-chaos",
            StreamChaos::TransferChaos(ChaosPlan::new(
                seed,
                ChaosConfig::transfers(0.25, 0.25, usize::MAX),
            )),
        ),
        1 => {
            // Alternate between a single-shot exact fault and a kernel
            // abort so both in-chunk recovery families stay exercised.
            if seed % 2 == 1 {
                (
                    "kernel-abort",
                    StreamChaos::KernelAbort { chunk: (seed / 3) as usize % num_chunks, seed },
                )
            } else {
                let kind =
                    if seed.is_multiple_of(4) { FaultKind::FailH2D } else { FaultKind::FailD2H };
                let trigger = (seed / 3) % num_chunks as u64;
                (
                    "transfer-once",
                    StreamChaos::TransferOnce(FaultPlan::exact(seed, kind, trigger, seed)),
                )
            }
        }
        _ => (
            "engine-crash@40%",
            StreamChaos::EngineCrashAt { engine: (seed / 3) as usize % 3, frac: 0.4 },
        ),
    }
}

fn mode_index(name: &str) -> usize {
    match name {
        "transfer-chaos" => 0,
        "transfer-once" | "kernel-abort" => 1,
        _ => 2,
    }
}

/// Run the gate: fault-free efficiency at the scale's size, then the
/// seeded campaign. Returns per-mode rows, the summary, and the journal of
/// the last crash-mode run (the crash-recovery artifact `repro` archives).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<ModeRow>, Summary, String) {
    // Fault-free overlap-efficiency gate. The matrix is ~3× the budget, so
    // the planner cuts ~6 double-buffered bands.
    let (rows, cols) = match scale {
        Scale::Reduced => (2880usize, 720usize),
        Scale::Full => (5760, 1440),
    };
    let data: Vec<u32> = (0..(rows * cols) as u32).map(|x| x.wrapping_mul(2_654_435_761)).collect();
    let budget = ((rows * cols) as u64) / 3;
    let cfg = StreamConfig::new(dev, budget);
    let (out, rep) = stream_transpose(dev, &data, rows, cols, 1, &cfg, &StreamChaos::None)
        .expect("fault-free stream");
    let reference = host_transpose_elems(&data, rows, cols, 1);
    assert_eq!(out, reference, "fault-free stream must be bit-exact");

    // Seeded mid-stream fault campaign on the small shape.
    let (cr, cc) = CAMPAIGN_SHAPE;
    let cbudget = ((cr * cc) as u64) / 3;
    let ccfg = StreamConfig::new(dev, cbudget);
    let num_chunks =
        plan_chunks(cr, cc, 1, cbudget, 2).expect("campaign plan").num_chunks;
    let mut rows_out = vec![
        ModeRow {
            mode: "transfer-chaos",
            runs: 0,
            transfer_faults: 0,
            kernel_faults: 0,
            chunk_retries: 0,
            degradations: 0,
            crash_resumes: 0,
            host_chunks: 0,
            mismatches: 0,
        },
        ModeRow { mode: "single-fault + kernel-abort", ..Default::default() },
        ModeRow { mode: "engine-crash@40%", ..Default::default() },
    ];
    let mut uncommitted = 0u64;
    let mut errors = 0u64;
    let mut journal_json = String::from("{}");
    for seed in 0..CAMPAIGN_RUNS {
        let cdata = campaign_data(seed);
        let (mode, chaos) = campaign_chaos(seed, num_chunks);
        let row = &mut rows_out[mode_index(mode)];
        row.runs += 1;
        match stream_transpose(dev, &cdata, cr, cc, 1, &ccfg, &chaos) {
            Ok((cout, crep)) => {
                row.transfer_faults += crep.transfer_faults as u64;
                row.kernel_faults += crep.kernel_faults as u64;
                row.chunk_retries += crep.chunk_retries as u64;
                row.degradations += crep.degradations as u64;
                row.crash_resumes += crep.crash_resumes as u64;
                row.host_chunks += crep
                    .journal
                    .chunks
                    .iter()
                    .filter(|c| c.path == StreamPath::HostChunk)
                    .count() as u64;
                if cout != host_transpose_elems(&cdata, cr, cc, 1) {
                    row.mismatches += 1;
                }
                if !crep.journal.all_committed() {
                    uncommitted += 1;
                }
                if matches!(chaos, StreamChaos::EngineCrashAt { .. }) {
                    journal_json = crep.journal.to_json();
                }
            }
            Err(_) => errors += 1,
        }
    }

    let mismatches: u64 = rows_out.iter().map(|r| r.mismatches).sum();
    let summary = Summary {
        rows,
        cols,
        budget_words: budget,
        chunks: rep.num_chunks,
        chunk_rows: rep.chunk_rows,
        effective_gbps: rep.effective_gbps,
        roofline_gbps: rep.roofline_gbps,
        overlap_efficiency: rep.overlap_efficiency,
        efficiency_floor: EFFICIENCY_FLOOR,
        campaign_runs: CAMPAIGN_RUNS,
        campaign_shape: CAMPAIGN_SHAPE,
        faults_injected: rows_out
            .iter()
            .map(|r| r.transfer_faults + r.kernel_faults + r.crash_resumes)
            .sum(),
        chunk_retries: rows_out.iter().map(|r| r.chunk_retries).sum(),
        degradations: rows_out.iter().map(|r| r.degradations).sum(),
        crash_resumes: rows_out.iter().map(|r| r.crash_resumes).sum(),
        slo_mismatches: mismatches,
        slo_uncommitted: uncommitted,
        slo_errors: errors,
        passed: rep.overlap_efficiency >= EFFICIENCY_FLOOR
            && mismatches == 0
            && uncommitted == 0
            && errors == 0,
    };
    (rows_out, summary, journal_json)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[ModeRow], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{}", r.runs),
                format!("{}", r.transfer_faults),
                format!("{}", r.kernel_faults),
                format!("{}", r.chunk_retries),
                format!("{}", r.degradations),
                format!("{}", r.crash_resumes),
                format!("{}", r.host_chunks),
                format!("{}", r.mismatches),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Out-of-core streaming transpose: overlap gate + mid-stream fault campaign",
        &["mode", "runs", "xfer", "kern", "retry", "degrade", "resume", "host", "bad"],
        &table,
    );
    out.push_str(&format!(
        "\nfault-free: {}x{} over a {}-word budget → {} chunks of {} rows\n\
         achieved {:.2} GB/s vs roofline {:.2} GB/s: overlap efficiency {:.3} \
         (floor {:.2})\n\
         campaign: {} runs on {}x{}, {} faults injected, {} retries, \
         {} degradations, {} crash resumes\n\
         zero-loss check: {} mismatches, {} uncommitted, {} errors (all must be 0)\n\
         {}\n",
        summary.rows,
        summary.cols,
        summary.budget_words,
        summary.chunks,
        summary.chunk_rows,
        summary.effective_gbps,
        summary.roofline_gbps,
        summary.overlap_efficiency,
        summary.efficiency_floor,
        summary.campaign_runs,
        summary.campaign_shape.0,
        summary.campaign_shape.1,
        summary.faults_injected,
        summary.chunk_retries,
        summary.degradations,
        summary.crash_resumes,
        summary.slo_mismatches,
        summary.slo_uncommitted,
        summary.slo_errors,
        if summary.passed { "OUTOFCORE PASS" } else { "OUTOFCORE FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_chaos_covers_all_modes_deterministically() {
        let mut seen = [false; 3];
        for seed in 0..12 {
            let (mode, _) = campaign_chaos(seed, 6);
            seen[mode_index(mode)] = true;
        }
        assert_eq!(seen, [true; 3]);
        // Same seed → same mode name (the chaos plans are seeded, so the
        // whole campaign replays exactly).
        for seed in 0..12 {
            assert_eq!(campaign_chaos(seed, 6).0, campaign_chaos(seed, 6).0);
        }
    }

    #[test]
    fn short_campaign_is_lossless() {
        // A 12-run slice of the real campaign (4 per mode) on the real
        // shape: every output bit-exact, every journal fully committed.
        let dev = DeviceSpec::tesla_k20();
        let (cr, cc) = CAMPAIGN_SHAPE;
        let cbudget = ((cr * cc) as u64) / 3;
        let cfg = StreamConfig::new(&dev, cbudget);
        let num_chunks = plan_chunks(cr, cc, 1, cbudget, 2).unwrap().num_chunks;
        for seed in 0..12u64 {
            let data = campaign_data(seed);
            let (mode, chaos) = campaign_chaos(seed, num_chunks);
            let (out, rep) =
                stream_transpose(&dev, &data, cr, cc, 1, &cfg, &chaos).unwrap();
            assert_eq!(out, host_transpose_elems(&data, cr, cc, 1), "seed {seed} ({mode})");
            assert!(rep.journal.all_committed(), "seed {seed} ({mode})");
        }
    }
}
