//! `races` — the schedule-exploration campaign behind the nightly CI
//! `races` job: seeded PCT sweeps over both claim protocols, a bounded
//! exhaustive pass on a tiny tile, and the planted-bug demonstration
//! proving the explorer can actually catch a claim race (a race hunter
//! that cannot find a known bug verifies nothing).
//!
//! Unlike the measurement experiments this one has a pass/fail verdict:
//! any sweep or exhaustive failure — or a missed planted bug — makes
//! [`Report::passed`] false, and `repro` exits nonzero. The JSON artifact
//! carries every failing schedule's reproducer (PCT sub-seed or minimized
//! decision trace) so CI uploads are directly replayable.

use gpu_sim::sched::ExploreConfig;
use ipt_gpu::{explore_case, pct_sweep, tiny_device, RaceTarget};
use serde::Serialize;

/// PCT priority-change depth used by every sweep in the campaign.
pub const PCT_DEPTH: usize = 3;

/// One failing schedule, in the artifact format CI uploads.
#[derive(Debug, Clone, Serialize)]
pub struct FailureRow {
    /// Sweep failures: index of the schedule within the sweep (0 for
    /// exhaustive failures).
    pub index: usize,
    /// Sweep failures: the PCT sub-seed that replays the schedule (0 for
    /// exhaustive failures).
    pub seed: u64,
    /// Exhaustive failures: the minimized decision trace (empty for sweep
    /// failures — their reproducer is the seed).
    pub trace: Vec<usize>,
    /// Preemptions the minimized trace performs.
    pub preemptions: usize,
    /// What went wrong (launch error or first corrupted element).
    pub detail: String,
}

/// One seeded PCT sweep over a race case.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Kernel under test (`pttwac010`, `pttwac100`).
    pub target: String,
    /// Tile rows.
    pub rows: usize,
    /// Tile cols.
    pub cols: usize,
    /// Work-group size.
    pub wg_size: usize,
    /// Schedules executed.
    pub schedules: usize,
    /// Claim retries summed over the sweep — contention evidence.
    pub claim_retries: u64,
    /// Failing schedules with their reproducer seeds.
    pub failures: Vec<FailureRow>,
}

/// One bounded exhaustive exploration of a race case.
#[derive(Debug, Clone, Serialize)]
pub struct ExhaustiveRow {
    /// Kernel under test.
    pub target: String,
    /// Tile rows.
    pub rows: usize,
    /// Tile cols.
    pub cols: usize,
    /// Work-group size.
    pub wg_size: usize,
    /// Preemption budget the explorer ran with.
    pub preemption_budget: usize,
    /// Schedules executed (including minimization re-runs).
    pub explored: usize,
    /// True when the schedule cap cut the frontier short.
    pub truncated: bool,
    /// Longest decision sequence observed.
    pub max_decisions: usize,
    /// Distinct minimized failing schedules.
    pub failures: Vec<FailureRow>,
}

/// The whole campaign: what `repro races --json DIR` archives.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Campaign base seed; sweep schedule *i* uses `mix64(base_seed, i)`.
    pub base_seed: u64,
    /// Schedule-provenance label (mirrors `SchedPolicy::label` style).
    pub schedule: String,
    /// Seeded PCT sweeps, one per claim protocol.
    pub sweeps: Vec<SweepRow>,
    /// Bounded exhaustive passes, one per claim protocol.
    pub exhaustive: Vec<ExhaustiveRow>,
    /// Did the explorer catch the planted split-claim TOCTOU bug?
    pub broken_caught: bool,
    /// The minimized schedules that falsify the planted bug.
    pub broken_minimized: Vec<FailureRow>,
}

impl Report {
    /// The campaign verdict: every real-kernel schedule passed *and* the
    /// planted bug was caught.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.sweeps.iter().all(|s| s.failures.is_empty())
            && self.exhaustive.iter().all(|e| e.failures.is_empty())
            && self.broken_caught
    }
}

/// The two real-kernel race cases every stage of the campaign drives:
/// `(target, rows, cols, wg_size)` on the [`tiny_device`].
const CASES: [(RaceTarget, usize, usize, usize); 2] =
    [(RaceTarget::P010, 4, 6, 8), (RaceTarget::P100, 4, 6, 4)];

/// Run the full campaign: `schedules` PCT runs per case derived from
/// `base_seed`, a bounded exhaustive pass per case, and the planted-bug
/// demonstration.
#[must_use]
pub fn run(base_seed: u64, schedules: usize) -> Report {
    let mut report = Report {
        base_seed,
        schedule: format!("pct(base={base_seed},d={PCT_DEPTH})+exhaustive"),
        sweeps: run_sweeps(base_seed, schedules),
        exhaustive: Vec::new(),
        broken_caught: false,
        broken_minimized: Vec::new(),
    };
    report.exhaustive = run_exhaustive();
    let broken = run_broken_demo();
    report.broken_caught = !broken.is_empty();
    report.broken_minimized = broken;
    report
}

/// The seeded PCT sweeps alone (factored out so tests can stay cheap).
#[must_use]
pub fn run_sweeps(base_seed: u64, schedules: usize) -> Vec<SweepRow> {
    let dev = tiny_device();
    CASES
        .iter()
        .map(|&(target, rows, cols, wg)| {
            let out = pct_sweep(&dev, target, rows, cols, wg, base_seed, schedules, PCT_DEPTH);
            SweepRow {
                target: target.label().to_string(),
                rows,
                cols,
                wg_size: wg,
                schedules: out.runs,
                claim_retries: out.claim_retries,
                failures: out
                    .failures
                    .into_iter()
                    .map(|f| FailureRow {
                        index: f.index,
                        seed: f.seed,
                        trace: Vec::new(),
                        preemptions: 0,
                        detail: f.detail,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// The bounded exhaustive passes alone.
#[must_use]
pub fn run_exhaustive() -> Vec<ExhaustiveRow> {
    let dev = tiny_device();
    let cfg = ExploreConfig { preemption_budget: 3, max_schedules: 700, max_failures: 4 };
    CASES
        .iter()
        .map(|&(target, rows, cols, wg)| {
            let out = explore_case(&dev, target, rows, cols, wg, &cfg);
            ExhaustiveRow {
                target: target.label().to_string(),
                rows,
                cols,
                wg_size: wg,
                preemption_budget: cfg.preemption_budget,
                explored: out.explored,
                truncated: out.truncated,
                max_decisions: out.max_decisions,
                failures: out
                    .failures
                    .into_iter()
                    .map(|f| FailureRow {
                        index: 0,
                        seed: 0,
                        trace: f.trace,
                        preemptions: f.preemptions,
                        detail: f.detail,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// The planted-bug demonstration: explore [`BrokenPttwac010`] and return
/// the minimized failing schedules. Empty means the explorer missed it —
/// a campaign failure.
///
/// [`BrokenPttwac010`]: ipt_gpu::BrokenPttwac010
#[must_use]
pub fn run_broken_demo() -> Vec<FailureRow> {
    let cfg = ExploreConfig { preemption_budget: 3, max_schedules: 2000, max_failures: 2 };
    explore_case(&tiny_device(), RaceTarget::Broken010, 3, 2, 8, &cfg)
        .failures
        .into_iter()
        .map(|f| FailureRow {
            index: 0,
            seed: 0,
            trace: f.trace,
            preemptions: f.preemptions,
            detail: f.detail,
        })
        .collect()
}

/// Render the campaign as a text digest.
#[must_use]
pub fn render(r: &Report) -> String {
    let mut rows = Vec::new();
    for s in &r.sweeps {
        rows.push(vec![
            "pct sweep".to_string(),
            s.target.clone(),
            format!("{}x{}", s.rows, s.cols),
            s.schedules.to_string(),
            s.claim_retries.to_string(),
            s.failures.len().to_string(),
        ]);
    }
    for e in &r.exhaustive {
        rows.push(vec![
            format!("exhaustive(b={})", e.preemption_budget),
            e.target.clone(),
            format!("{}x{}", e.rows, e.cols),
            e.explored.to_string(),
            "-".to_string(),
            e.failures.len().to_string(),
        ]);
    }
    let mut out = crate::experiments::text_table(
        &format!("races: schedule exploration (base seed {})", r.base_seed),
        &["stage", "kernel", "tile", "schedules", "claim-retries", "failures"],
        &rows,
    );
    if r.broken_caught {
        let f = &r.broken_minimized[0];
        out.push_str(&format!(
            "planted TOCTOU bug: CAUGHT (minimized trace {:?}, {} preemption(s): {})\n",
            f.trace, f.preemptions, f.detail
        ));
    } else {
        out.push_str("planted TOCTOU bug: MISSED — the explorer found no failing schedule\n");
    }
    out.push_str(if r.passed() { "verdict: PASS\n" } else { "verdict: FAIL\n" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> Report {
        Report {
            base_seed: 7,
            schedule: "pct(base=7,d=3)+exhaustive".into(),
            sweeps: run_sweeps(7, 2),
            exhaustive: Vec::new(),
            broken_caught: true,
            broken_minimized: vec![FailureRow {
                index: 0,
                seed: 0,
                trace: vec![1, 0],
                preemptions: 1,
                detail: "corrupt element 2".into(),
            }],
        }
    }

    #[test]
    fn small_sweep_passes_and_renders() {
        let r = tiny_report();
        assert_eq!(r.sweeps.len(), 2);
        assert!(r.passed(), "{:?}", r.sweeps);
        let text = render(&r);
        assert!(text.contains("pttwac010"), "{text}");
        assert!(text.contains("CAUGHT"), "{text}");
        assert!(text.contains("verdict: PASS"), "{text}");
    }

    #[test]
    fn missed_planted_bug_fails_the_campaign() {
        let mut r = tiny_report();
        r.broken_caught = false;
        r.broken_minimized.clear();
        assert!(!r.passed());
        assert!(render(&r).contains("verdict: FAIL"));
    }

    #[test]
    fn sweep_failure_fails_the_campaign() {
        let mut r = tiny_report();
        r.sweeps[0].failures.push(FailureRow {
            index: 3,
            seed: 99,
            trace: Vec::new(),
            preemptions: 0,
            detail: "corrupt element 0".into(),
        });
        assert!(!r.passed());
    }

    #[test]
    fn report_serializes_with_reproducers() {
        let r = tiny_report();
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        assert!(json.contains("base_seed"), "{json}");
        assert!(json.contains("\"trace\""), "{json}");
    }
}
