//! **§7.2 sweep** — warp-based `100!` vs Sung's work-group-per-super-element
//! version; register-tiling bonus.
//!
//! Paper result: avg (min/max) speedup 2.95 (1.97/4.09) on GTX 580 and
//! 2.58 (1.54/3.50) on K20 with local-memory tiling; register tiling adds
//! +16 % (GTX 580) / +23 % (K20) where legal; no speedup on the AMD device
//! (but added flexibility).

use crate::common::run_100;
use crate::workloads::Scale;
use gpu_sim::DeviceSpec;
use ipt_gpu::opts::{GpuOptions, Variant100};
use serde::Serialize;

/// One device's aggregated sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSummary {
    /// Device name.
    pub device: String,
    /// Mean speedup warp/local-tile vs Sung.
    pub avg_speedup: f64,
    /// Minimum speedup.
    pub min_speedup: f64,
    /// Maximum speedup.
    pub max_speedup: f64,
    /// Mean extra gain of register tiling where legal.
    pub reg_tiling_gain: f64,
    /// Points measured.
    pub points: usize,
}

/// Sweep grid: m ∈ 16..64, M′ ∈ 16..256 (strided).
#[must_use]
pub fn grid(scale: Scale) -> (Vec<usize>, Vec<usize>) {
    match scale {
        Scale::Full => ((16..=64).step_by(4).collect(), (16..=256).step_by(16).collect()),
        Scale::Reduced => ((16..=64).step_by(16).collect(), (16..=256).step_by(60).collect()),
    }
}

/// Run the sweep on one device. The experiment resizes `N × M′ × m` →
/// `M′ × N × m`; N is fixed at 64 rows of super-elements.
#[must_use]
pub fn run_device(dev: &DeviceSpec, scale: Scale) -> DeviceSummary {
    let (ms, mps) = grid(scale);
    let n_dim = 64usize;
    let wg = GpuOptions::tuned_for(dev).wg_size_100;
    let mut speedups = Vec::new();
    let mut reg_gains = Vec::new();
    for &m in &ms {
        // Sung's variant launches work-groups of exactly m threads.
        if m > dev.max_threads_per_wg {
            continue;
        }
        for &mp in &mps {
            let (sung, _) = run_100(dev, n_dim, mp, m, Variant100::SungWorkGroup, 0);
            let (local, _) = run_100(dev, n_dim, mp, m, Variant100::WarpLocalTile, wg);
            speedups.push(sung.time_s / local.time_s);
            let reg_legal = m % dev.simd_width == 0 || dev.simd_width.is_multiple_of(m);
            if reg_legal {
                let (reg, _) = run_100(dev, n_dim, mp, m, Variant100::WarpRegTile, wg);
                reg_gains.push(local.time_s / reg.time_s - 1.0);
            }
        }
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    DeviceSummary {
        device: dev.name.to_string(),
        avg_speedup: mean(&speedups),
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        reg_tiling_gain: mean(&reg_gains),
        points: speedups.len(),
    }
}

/// Run on the paper's three GPUs.
#[must_use]
pub fn run(scale: Scale) -> Vec<DeviceSummary> {
    [DeviceSpec::gtx580(), DeviceSpec::tesla_k20(), DeviceSpec::hd7750()]
        .iter()
        .map(|d| run_device(d, scale))
        .collect()
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[DeviceSummary]) -> String {
    let paper: [(&str, &str, &str); 3] = [
        ("GeForce GTX 580", "2.95 (1.97/4.09)", "+16%"),
        ("Tesla K20", "2.58 (1.54/3.50)", "+23%"),
        ("Radeon HD 7750", "~1.0 (no gain)", "-"),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (_, pspd, preg) = paper
                .iter()
                .find(|(n, _, _)| *n == r.device)
                .copied()
                .unwrap_or(("", "-", "-"));
            vec![
                r.device.clone(),
                format!("{:.2}", r.avg_speedup),
                format!("{:.2}", r.min_speedup),
                format!("{:.2}", r.max_speedup),
                pspd.to_string(),
                format!("{:+.0}%", r.reg_tiling_gain * 100.0),
                preg.to_string(),
                r.points.to_string(),
            ]
        })
        .collect();
    super::text_table(
        "S7.2: warp-based vs Sung 100! (speedup) and register-tiling gain",
        &["device", "avg", "min", "max", "paper", "reg-gain", "paper-reg", "points"],
        &table,
    )
}
