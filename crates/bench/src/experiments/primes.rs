//! **Extension (paper footnote 6)** — prime / coprime dimensions.
//!
//! The paper's only acknowledged limitation (§7.4): "when the algorithm
//! cannot choose a good tile size (e.g., prime-number dimensions), the
//! throughput would be degraded", pointing at Catanzaro et al. \[25\] for a
//! decomposition without that limitation. This experiment measures the
//! repository's coprime two-phase decomposition against the paper's own
//! fallback (the single-stage pass) on prime-dimension matrices, on the
//! simulated K20 and on the host CPU.

use crate::common::{gbps, host_matrix, measure_median};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::coprime::transpose_matrix_coprime;
use ipt_core::stages::StagePlan;
use ipt_core::Matrix;
use ipt_gpu::coprime::transpose_coprime_on_device;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use serde::Serialize;

/// One prime-shape row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Matrix rows (prime or coprime to cols).
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// Simulated K20: coprime decomposition (GB/s).
    pub gpu_coprime: f64,
    /// Simulated K20: single-stage fallback (GB/s).
    pub gpu_single_stage: f64,
    /// Host CPU: parallel coprime decomposition (GB/s, wall clock).
    pub cpu_coprime: f64,
    /// Host CPU: single-threaded Windley walker (GB/s, wall clock).
    pub cpu_seq: f64,
}

/// Prime-dimension shapes (both dims prime, or prime × power-of-two).
#[must_use]
pub fn shapes() -> Vec<(usize, usize)> {
    vec![(1009, 251), (509, 521), (997, 512), (251, 1013), (761, 128)]
}

/// Run the comparison.
#[must_use]
pub fn run(dev: &DeviceSpec) -> Vec<Row> {
    let opts = GpuOptions::tuned_for(dev);
    shapes()
        .into_iter()
        .map(|(r, c)| {
            let bytes = (r * c * 4) as f64;

            // Simulated coprime decomposition (verified).
            let mut sim = Sim::new(dev.clone(), r * c + 8);
            let buf = sim.alloc(r * c);
            let mat = Matrix::iota(r, c);
            sim.upload_u32(buf, mat.as_slice());
            let stats = transpose_coprime_on_device(&sim, buf, r, c, 256).expect("launch");
            assert_eq!(
                sim.download_u32(buf),
                mat.transposed().into_vec(),
                "device coprime incorrect"
            );
            let gpu_coprime = stats.throughput_gbps(bytes);

            // Simulated single-stage fallback.
            let plan = StagePlan::single_stage(r, c);
            let mut sim = Sim::new(dev.clone(), r * c + plan_flag_words(&plan) + 64);
            let mut data = mat.as_slice().to_vec();
            let stats =
                transpose_on_device(&mut sim, &mut data, r, c, &plan, &opts).expect("launch");
            let gpu_single_stage = stats.throughput_gbps(bytes);

            // Host CPU measurements.
            let m = host_matrix(r, c);
            let (t, out) = measure_median(&m, 3, transpose_matrix_coprime);
            assert_eq!(out, m.transposed());
            let cpu_coprime = gbps(bytes, t);
            let (t, out) = measure_median(&m, 1, ipt_baselines::transpose_in_place_seq);
            assert_eq!(out, m.transposed());
            let cpu_seq = gbps(bytes, t);

            Row { rows: r, cols: c, gpu_coprime, gpu_single_stage, cpu_coprime, cpu_seq }
        })
        .collect()
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.rows, r.cols),
                format!("{:.2}", r.gpu_coprime),
                format!("{:.2}", r.gpu_single_stage),
                format!("x{:.1}", r.gpu_coprime / r.gpu_single_stage),
                format!("{:.2}", r.cpu_coprime),
                format!("{:.3}", r.cpu_seq),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Extension: prime/coprime dimensions (coprime decomposition vs the paper's fallback)",
        &["matrix", "GPU coprime", "GPU 1-stage", "speedup", "CPU coprime", "CPU seq"],
        &table,
    );
    let avg: f64 = rows.iter().map(|r| r.gpu_coprime / r.gpu_single_stage).sum::<f64>()
        / rows.len() as f64;
    out.push_str(&format!(
        "\naverage speedup over the paper's prime-dimension fallback: x{avg:.1}\n\
         (the paper's §7.4 limitation, removed per its footnote-6 reference [25])\n"
    ));
    out
}
