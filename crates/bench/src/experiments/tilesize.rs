//! **§7.3 tile-size dominance** — the 100!-family's throughput is dominated
//! by the super-element size, which is why the 3-stage algorithm (bigger
//! tiles) wins.
//!
//! Paper, Tesla K20: 12.5 / 24.5 / 47.6 / 69 GB/s for tile sizes
//! 8 / 16 / 32 / 64 on average; best tiles (m,n) = (20,16) for the 4-stage
//! and (32,72) for the 3-stage algorithm on 7200×1800.
//!
//! (Formerly registered as `dominance`; that name now belongs to the
//! C2R-vs-rivals scheme sweep in [`super::dominance`].)

use crate::common::run_100;
use crate::workloads::Scale;
use gpu_sim::DeviceSpec;
use ipt_gpu::opts::{GpuOptions, Variant100};
use serde::Serialize;

/// One super-element-size point.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Super-element size (words).
    pub super_size: usize,
    /// Mean throughput over the shape set (GB/s).
    pub gbps: f64,
    /// Paper's average for this size.
    pub paper_gbps: f64,
}

/// The paper's quoted averages.
pub const PAPER: [(usize, f64); 4] = [(8, 12.5), (16, 24.5), (32, 47.6), (64, 69.0)];

/// Run the tile-size measurement: average `100!` throughput across a set of
/// grid shapes for each super-element size.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> Vec<Row> {
    let shapes: &[(usize, usize)] = match scale {
        Scale::Full => &[(64, 100), (128, 50), (100, 64), (200, 25)],
        Scale::Reduced => &[(64, 50), (100, 32)],
    };
    let wg = GpuOptions::tuned_for(dev).wg_size_100;
    PAPER
        .iter()
        .map(|&(s, paper)| {
            let mut acc = 0.0;
            for &(r, c) in shapes {
                let (stats, bytes) = run_100(dev, r, c, s, Variant100::Auto, wg);
                acc += stats.throughput_gbps(bytes);
            }
            Row { super_size: s, gbps: acc / shapes.len() as f64, paper_gbps: paper }
        })
        .collect()
}

/// Render the text report.
#[must_use]
pub fn render_for(rows: &[Row], device: &str) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.super_size.to_string(),
                format!("{:.1}", r.gbps),
                format!("{:.1}", r.paper_gbps),
            ]
        })
        .collect();
    let mut out = super::text_table(
        &format!("S7.3: 100!-family throughput vs tile (super-element) size, {device}"),
        &["tile", "GB/s", "paper GB/s (K20)"],
        &table,
    );
    let monotone = rows.windows(2).all(|w| w[1].gbps > w[0].gbps);
    out.push_str(&format!(
        "\nmonotone increase with tile size: {monotone}  [paper: yes — this is why the 3-stage algorithm's larger tiles win]\n"
    ));
    out
}

/// Render with the default device label.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    render_for(rows, "Tesla K20")
}
