//! **Table 3 / Figure 9** — the CPU-vs-GPU assessment: every in-place and
//! out-of-place implementation, throughput from the CPU's perspective, and
//! memory overheads.
//!
//! Paper (6-core Xeon + Tesla K20): MKL OOP 12.07, MKL in-place < 0.1,
//! GKK OOP 2.36, GKK in-place 2.85, GPU OOP + transfers 3.57, 3-stage GPU
//! in-place + transfers 3.43 GB/s. CPU rows here are *real wall-clock
//! measurements on the host machine* (so absolute values differ from the
//! 2013 Xeon), GPU rows are simulated; the ordering and overhead columns
//! are the reproduced shape.

use crate::common::{gbps, host_matrix, measure_median};
use crate::workloads::{matrix_bytes, table2_sizes, Scale};
use gpu_sim::DeviceSpec;
use ipt_baselines::{
    transpose_in_place_gkk, transpose_in_place_seq, transpose_oop_par,
};
use ipt_core::stages::StagePlan;
use ipt_gpu::host::{run_host_oop, run_host_sync};
use ipt_gpu::opts::GpuOptions;
use serde::Serialize;

/// One implementation's aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Implementation name (paper's row labels).
    pub implementation: String,
    /// Where it runs.
    pub executed_on: String,
    /// Mean simulated throughput over the sizes (GB/s). `Some` only for
    /// the GPU rows — deterministic, so it gates on the tight channel.
    pub gbps: Option<f64>,
    /// Mean *host-measured* throughput over the sizes (GB/s). `Some` only
    /// for the CPU rows: the `wall_` prefix routes real wall time on the
    /// build host to the wide wall-clock channel so machine jitter never
    /// trips the tight deterministic gate.
    pub wall_gbps: Option<f64>,
    /// Paper's value (GB/s).
    pub paper_gbps: f64,
    /// Host memory overhead.
    pub cpu_overhead: &'static str,
    /// Device memory overhead.
    pub gpu_overhead: &'static str,
}

/// Per-size detail (Figure 9's bars).
#[derive(Debug, Clone, Serialize)]
pub struct Detail {
    /// Matrix shape.
    pub rows: usize,
    /// Matrix shape.
    pub cols: usize,
    /// (implementation, GB/s) pairs.
    pub gbps: Vec<(String, f64)>,
}

fn cpu_threads() -> usize {
    rayon::current_num_threads()
}

/// Run the assessment. `seq_in_place` is skipped at full scale unless
/// `include_slow` (it is genuinely minutes-slow, like MKL's).
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale, include_slow: bool) -> (Vec<Row>, Vec<Detail>) {
    let sizes = table2_sizes(scale);
    let opts = GpuOptions::tuned_for(dev);
    let mut acc: Vec<(String, Vec<f64>)> = Vec::new();
    let mut details = Vec::new();
    let push = |acc: &mut Vec<(String, Vec<f64>)>, name: &str, v: f64| {
        if let Some((_, vs)) = acc.iter_mut().find(|(n, _)| n == name) {
            vs.push(v);
        } else {
            acc.push((name.to_string(), vec![v]));
        }
    };

    for &(r, c) in &sizes {
        let bytes = matrix_bytes(r, c);
        let m = host_matrix(r, c);
        let mut detail = Vec::new();

        // MKL-like parallel out-of-place (real time).
        let (t, out) = measure_median(&m, 3, |x| transpose_oop_par(&x));
        assert_eq!(out, m.transposed());
        push(&mut acc, "MKL-like out-of-place", gbps(bytes, t));
        detail.push(("MKL-like OOP".to_string(), gbps(bytes, t)));

        // MKL-like in-place (sequential; slow).
        if include_slow {
            let (t, out) = measure_median(&m, 1, transpose_in_place_seq);
            assert_eq!(out, m.transposed());
            push(&mut acc, "MKL-like in-place (sequential)", gbps(bytes, t));
            detail.push(("seq in-place".to_string(), gbps(bytes, t)));
        }

        // GKK out-of-place.
        let (t, out) = measure_median(&m, 3, |x| ipt_baselines::transpose_oop_gkk(&x));
        assert_eq!(out, m.transposed());
        push(&mut acc, "GKK out-of-place", gbps(bytes, t));
        detail.push(("GKK OOP".to_string(), gbps(bytes, t)));

        // GKK in-place.
        let threads = cpu_threads();
        let (t, out) = measure_median(&m, 3, |x| transpose_in_place_gkk(x, threads));
        assert_eq!(out, m.transposed());
        push(&mut acc, "GKK in-place", gbps(bytes, t));
        detail.push(("GKK in-place".to_string(), gbps(bytes, t)));

        // GPU out-of-place + transfers (simulated).
        let rep = run_host_oop(dev, r, c).expect("oop host run");
        push(&mut acc, "GPU out-of-place + transfers", rep.effective_gbps);
        detail.push(("GPU OOP+xfer".to_string(), rep.effective_gbps));

        // 3-stage GPU in-place + transfers (simulated, synchronous).
        let tile = super::table2::tile3_for(r, c, scale);
        let plan = StagePlan::three_stage(r, c, tile).expect("tile divides");
        let rep = run_host_sync(dev, r, c, &plan, &opts).expect("sync host run");
        push(&mut acc, "3-stage GPU in-place + transfers", rep.effective_gbps);
        detail.push(("3-stage+xfer".to_string(), rep.effective_gbps));

        details.push(Detail { rows: r, cols: c, gbps: detail });
    }

    let meta: [(&str, &str, f64, &str, &str); 6] = [
        ("MKL-like out-of-place", "CPU cores", 12.07, "100%", "-"),
        ("MKL-like in-place (sequential)", "1 CPU core", 0.1, "0%", "-"),
        ("GKK out-of-place", "CPU cores", 2.36, "100%", "-"),
        ("GKK in-place", "CPU cores", 2.85, "0%", "-"),
        ("GPU out-of-place + transfers", "GPU cores", 3.57, "0%", "100%"),
        ("3-stage GPU in-place + transfers", "GPU cores", 3.43, "0%", "~0%"),
    ];
    let rows = acc
        .into_iter()
        .map(|(name, vs)| {
            let (_, on, paper, co, go) = meta
                .iter()
                .find(|(n, ..)| *n == name)
                .copied()
                .unwrap_or(("", "?", 0.0, "?", "?"));
            let mean = vs.iter().sum::<f64>() / vs.len() as f64;
            let simulated = on.contains("GPU");
            Row {
                implementation: name,
                executed_on: on.to_string(),
                gbps: simulated.then_some(mean),
                wall_gbps: (!simulated).then_some(mean),
                paper_gbps: paper,
                cpu_overhead: co,
                gpu_overhead: go,
            }
        })
        .collect();
    (rows, details)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], details: &[Detail]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.implementation.clone(),
                r.executed_on.clone(),
                format!("{:.2}", r.gbps.or(r.wall_gbps).unwrap_or(f64::NAN)),
                format!("{:.2}", r.paper_gbps),
                r.cpu_overhead.to_string(),
                r.gpu_overhead.to_string(),
            ]
        })
        .collect();
    let mut out = super::text_table(
        &format!(
            "Table 3: in-place / out-of-place assessment (CPU rows measured on this host, {} thread(s); GPU rows simulated)",
            rayon::current_num_threads()
        ),
        &["implementation", "on", "GB/s", "paper GB/s", "CPU mem ovh", "GPU mem ovh"],
        &table,
    );
    out.push_str("\nFigure 9 detail (GB/s per matrix size):\n");
    for d in details {
        let parts: Vec<String> =
            d.gbps.iter().map(|(n, v)| format!("{n}={v:.2}")).collect();
        out.push_str(&format!("  {}x{}: {}\n", d.rows, d.cols, parts.join("  ")));
    }
    out
}
