//! **Extension (paper §8 future work)** — the 3-stage algorithm as a
//! building block for multi-GPU transposition.
//!
//! The matrix is row-blocked across D simulated K20s; each block is
//! transposed in place with the 3-stage algorithm and shipped back as a
//! column panel. With one shared host PCIe link, transfers stay the
//! bottleneck (the end-to-end gain saturates); with private links the
//! pipeline scales — quantifying what the paper's future-work sentence
//! implies.

use gpu_sim::DeviceSpec;
use ipt_gpu::multi::{run_multi_gpu, LinkTopology};
use ipt_gpu::opts::GpuOptions;
use serde::Serialize;

/// One (devices, topology) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Matrix shape.
    pub rows: usize,
    /// Matrix shape.
    pub cols: usize,
    /// Device count.
    pub devices: usize,
    /// Link topology.
    pub link: LinkTopology,
    /// End-to-end seconds.
    pub total_s: f64,
    /// Effective host-side throughput (GB/s).
    pub effective_gbps: f64,
}

/// Run the scaling study on one matrix size.
#[must_use]
pub fn run(dev: &DeviceSpec, rows: usize, cols: usize) -> Vec<Row> {
    let opts = GpuOptions::tuned_for(dev);
    let mut out = Vec::new();
    for link in [LinkTopology::Shared, LinkTopology::Private] {
        for d in [1usize, 2, 4, 8] {
            if !rows.is_multiple_of(d) {
                continue;
            }
            let rep = run_multi_gpu(dev, d, rows, cols, &opts, link).expect("multi-gpu run");
            out.push(Row {
                rows,
                cols,
                devices: d,
                link,
                total_s: rep.total_s,
                effective_gbps: rep.effective_gbps,
            });
        }
    }
    out
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let base = rows
                .iter()
                .find(|x| x.link == r.link && x.devices == 1)
                .map_or(1.0, |x| x.total_s);
            vec![
                format!("{}x{}", r.rows, r.cols),
                format!("{:?}", r.link),
                r.devices.to_string(),
                format!("{:.2}", r.total_s * 1e3),
                format!("{:.2}", r.effective_gbps),
                format!("x{:.2}", base / r.total_s),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Extension: multi-GPU 3-stage transposition (paper §8 future work)",
        &["matrix", "link", "devices", "total ms", "eff GB/s", "scaling"],
        &table,
    );
    out.push_str(
        "\nshared host link: compute parallelises, PCIe does not — the gain saturates;\n\
         private links: the full pipeline scales with the device count.\n",
    );
    out
}
