//! **Robustness gate** — the sharded serving fleet under a long mixed soak.
//!
//! Drives `ipt_gpu::fleet` with a deterministic stream of 100k requests
//! (1M under `--full`) over the reduced serving mix: three priority
//! classes, periodic 2× bursts, one injected shard crash at 40% of the
//! first period with orphan re-routing, and a warm restart from the
//! crashed shard's persisted plan-cache snapshot at 50%. The stream is
//! exactly periodic (shapes and payload seeds repeat every
//! [`PERIOD`] requests) and the crash happens only in the first period, so
//! the 1M run's SLO metrics can only improve on the committed 100k
//! baseline — one `bench_out/soak.json` gates both scales.
//!
//! Correctness is continuously sampled, never assumed: every full
//! device-path execution is verified against the host reference, and
//! timing-replayed / host-shed results are spot-checked on a fixed
//! deterministic cadence. Any mismatch fails the run (exit 1 in `repro`).
//!
//! Reported SLO metrics use the `slo_` prefix (lower-is-better channel of
//! `repro --check`): p50/p99 queue waits, shed rate, reject rate. The
//! aggregate plan-cache hit rate after the warm restart must stay ≥ 90% —
//! the warm-start snapshot is what keeps it there.

use crate::workloads::{serve_mix, Scale};
use gpu_sim::DeviceSpec;
use ipt_core::check::bytes_f64;
use ipt_gpu::fleet::{Fleet, FleetConfig};
use ipt_gpu::recover::host_transpose_elems;
use ipt_gpu::serve::{DegradeLevel, PriorityClass, ServeRequest, ServedResult};
use ipt_gpu::TransposeError;
use ipt_obs::{Counter, LogHisto, TraceRecorder};
use serde::Serialize;

/// Stream period: shapes and payload seeds repeat exactly every this many
/// requests, so longer soaks replay the first period's behaviour minus its
/// crash.
pub const PERIOD: usize = 100_000;
/// Requests submitted per admission round.
pub const ROUND_SIZE: usize = 96;
/// Every this-many-th round is a 2× burst (the overload injector).
pub const BURST_EVERY: usize = 8;
/// Profile-replay resample cadence: every N-th eligible repeat still runs
/// the full verified device path.
pub const FULL_EXEC_EVERY: usize = 97;
/// Spot-check cadence for timing-replayed / host-shed results.
pub const VERIFY_SAMPLE_EVERY: u64 = 997;

/// Per-priority-class accounting.
#[derive(Debug, Clone, Serialize)]
pub struct ClassRow {
    /// Priority class name.
    pub class: &'static str,
    /// Requests of this class served.
    pub requests: u64,
    /// Mean simulated queue wait, microseconds.
    pub mean_wait_us: f64,
    /// p99 simulated queue wait, microseconds.
    pub p99_wait_us: f64,
    /// Requests degraded to conservative options.
    pub degraded: u64,
    /// Requests shed to the host path.
    pub shed: u64,
}

/// Soak-level summary. `slo_*` fields gate lower-is-better in
/// `repro --check`; `effective_gbps` gates on the throughput channel.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Requests served end to end.
    pub requests: u64,
    /// Stream period (shape/payload recurrence).
    pub period: usize,
    /// Fleet rounds processed.
    pub rounds: u64,
    /// Shard index crashed at `crash_at`.
    pub crashed_shard: usize,
    /// Request index of the injected crash.
    pub crash_at: usize,
    /// Request index of the warm restart.
    pub restart_at: usize,
    /// Admitted-but-unserved requests handed back by the crash and
    /// re-routed to surviving shards.
    pub orphans_rerouted: usize,
    /// Plan-cache entries restored by the warm restart.
    pub plans_restored: usize,
    /// Results verified against the host reference.
    pub correctness_checks: u64,
    /// Verified results that did NOT match (must be 0).
    pub correctness_failures: u64,
    /// Aggregate plan-cache hit rate across shards at stream end
    /// (post-restart; the acceptance floor is 0.90).
    pub hit_rate: f64,
    /// Deterministic aggregate throughput over the fleet timeline (GB/s,
    /// paper convention, device-launched traffic only).
    pub effective_gbps: f64,
    /// p50 simulated queue wait, microseconds (SLO gate).
    pub slo_p50_wait_us: f64,
    /// p99 simulated queue wait, microseconds (SLO gate).
    pub slo_p99_wait_us: f64,
    /// Shed requests / served requests (SLO gate).
    pub slo_shed_rate: f64,
    /// Dropped requests / offered requests (SLO gate; the drain-and-retry
    /// protocol keeps this at 0 unless the whole fleet is down).
    pub slo_reject_rate: f64,
    /// Requests degraded to conservative options.
    pub degraded: u64,
    /// Requests shed to the host path.
    pub shed: u64,
    /// Requests dropped after backpressure persisted through a drain.
    pub rejected: u64,
    /// Typed backpressure refusals absorbed by drain-and-retry.
    pub backpressure_hits: u64,
    /// Requests re-routed off the crashed shard.
    pub failovers: u64,
    /// Successful snapshot restores (the warm restart).
    pub snapshot_restores: u64,
    /// Full verified device executions (cold builds + resamples).
    pub full_execs: u64,
    /// Timing-replayed requests.
    pub profiled_replays: u64,
    /// Total simulated fleet makespan, seconds.
    pub sim_makespan_s: f64,
    /// Host wall requests/second (machine-specific; not a checked metric).
    pub host_rps: f64,
    /// Burn-rate SLO alerts fired over the whole soak (bursts and the
    /// crash drill must raise some).
    pub alerts: u64,
    /// Alerts that fired outside every expected-hot interval (burst
    /// rounds, backpressure drains, the crash→restart window, each padded
    /// by the longest alert window). Gated at its committed baseline of
    /// 0 — clean periods must stay silent.
    pub slo_false_positive_alerts: u64,
    /// Did the soak meet its acceptance floors (zero correctness failures,
    /// hit rate ≥ 0.90, no false-positive alerts)?
    pub passed: bool,
}

/// Per-period shape table: the reduced serving mix, LCG-ordered. Re-seeded
/// per period, so request `i` always maps to `table[i % period]`.
#[must_use]
pub fn shape_table(period: usize) -> Vec<(usize, usize, usize)> {
    let mix = serve_mix(Scale::Reduced);
    let mut state: u64 = 0xC0FF_EE11_D00D_F00D;
    (0..period)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            mix[(state >> 33) as usize % mix.len()]
        })
        .collect()
}

/// Priority class of request `i`: 60% batch, 30% interactive, 10%
/// background, deterministically interleaved.
#[must_use]
pub fn class_of(i: u64) -> PriorityClass {
    match i % 10 {
        6..=8 => PriorityClass::Interactive,
        9 => PriorityClass::Background,
        _ => PriorityClass::Batch,
    }
}

/// Materialize request `i`. Payloads derive from the id alone, so results
/// are verifiable without retaining the stream.
#[must_use]
pub fn make_request(table: &[(usize, usize, usize)], id: u64) -> ServeRequest {
    let (rows, cols, elem_bytes) = table[id as usize % table.len()];
    let words = rows * cols * (elem_bytes / 4);
    let data = (0..words as u32)
        .map(|x| x.wrapping_mul(2_654_435_761).wrapping_add(id as u32))
        .collect();
    ServeRequest { id, rows, cols, elem_bytes, priority: class_of(id), data }
}

fn class_idx(p: PriorityClass) -> usize {
    match p {
        PriorityClass::Interactive => 0,
        PriorityClass::Batch => 1,
        PriorityClass::Background => 2,
    }
}

/// Streaming aggregation — results are observed and dropped, never
/// retained (queue-wait distributions live in the recorder's bounded
/// log2 histograms), so a 1M soak stays at tens of megabytes.
struct Agg<'a> {
    table: &'a [(usize, usize, usize)],
    class_requests: [u64; 3],
    class_degraded: [u64; 3],
    class_shed: [u64; 3],
    launched_bytes: f64,
    sim_makespan_s: f64,
    rounds: u64,
    served: u64,
    degraded: u64,
    shed: u64,
    checks: u64,
    failures: u64,
    /// Fleet-clock intervals where SLO alerts are expected (burst rounds,
    /// backpressure drains, the crash→restart window).
    hot_intervals: Vec<(f64, f64)>,
}

impl Agg<'_> {
    fn observe(&mut self, res: &ServedResult) {
        self.served += 1;
        let c = class_idx(res.priority);
        self.class_requests[c] += 1;
        let (rows, cols, elem_bytes) = self.table[res.id as usize % self.table.len()];
        match res.degrade {
            DegradeLevel::Tuned => {}
            DegradeLevel::Conservative => {
                self.degraded += 1;
                self.class_degraded[c] += 1;
            }
            DegradeLevel::HostShed => {
                self.shed += 1;
                self.class_shed[c] += 1;
            }
        }
        if res.service_s > 0.0 {
            self.launched_bytes += bytes_f64(rows, cols, elem_bytes);
        }
        // Verification: full device-path executions always; replayed and
        // shed results on a fixed deterministic sample cadence.
        let sampled = res.id.is_multiple_of(VERIFY_SAMPLE_EVERY);
        let full_path = res.engine != "profiled" && res.engine != "host";
        if full_path || sampled {
            self.checks += 1;
            let req = make_request(self.table, res.id);
            let want = if rows <= 1 || cols <= 1 {
                req.data
            } else {
                host_transpose_elems(&req.data, rows, cols, elem_bytes / 4)
            };
            if res.data != want {
                self.failures += 1;
            }
        }
    }
}

/// Drain one fleet round. `hot` marks the drained interval as
/// expected-alert territory (burst rounds, backpressure overload).
fn drain(fleet: &mut Fleet, agg: &mut Agg<'_>, rec: &TraceRecorder, hot: bool) {
    let start_s = fleet.clock_s();
    let round = fleet.process_rounds(rec).expect("fleet round");
    agg.rounds += 1;
    agg.sim_makespan_s += round.makespan_s;
    if hot {
        agg.hot_intervals.push((start_s, fleet.clock_s()));
    }
    for (_, rep) in &round.rounds {
        for res in &rep.results {
            agg.observe(res);
        }
    }
}

/// Submit with the drain-and-retry protocol: one backpressure refusal
/// drains a fleet round and retries; a second refusal drops the request
/// (counted — a real rejection).
fn submit_retry(
    fleet: &mut Fleet,
    req: ServeRequest,
    agg: &mut Agg<'_>,
    rec: &TraceRecorder,
    backpressure_hits: &mut u64,
    rejected: &mut u64,
) {
    match fleet.submit(req.clone(), rec) {
        Ok(_) => {}
        Err(TransposeError::Backpressure { .. }) => {
            *backpressure_hits += 1;
            // Backpressure means overload: the drain it forces may
            // legitimately shed, so alerts here are expected.
            drain(fleet, agg, rec, true);
            match fleet.submit(req, rec) {
                Ok(_) => {}
                Err(TransposeError::Backpressure { .. }) => *rejected += 1,
                Err(e) => panic!("soak request refused: {e}"),
            }
        }
        Err(e) => panic!("soak request refused: {e}"),
    }
}

/// Run the soak at the scale's request count (100k reduced, 1M full; the
/// shape mix is always the reduced one — `--full` scales the stream, not
/// the matrices, so the soak stays a serving-robustness gate rather than a
/// kernel benchmark).
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<ClassRow>, Summary) {
    let n = match scale {
        Scale::Reduced => 100_000,
        Scale::Full => 1_000_000,
    };
    run_sized(dev, n, PERIOD.min(n), ROUND_SIZE, None)
}

/// [`run`] with explicit sizing (tests use shorter streams and a tighter
/// admission queue to provoke the degradation ladder quickly). Uses a
/// bounded counters-only recorder: counters and latency histograms
/// aggregate, spans/events drop — memory stays flat over a million
/// requests.
#[must_use]
pub fn run_sized(
    dev: &DeviceSpec,
    n: usize,
    period: usize,
    round_size: usize,
    queue_capacity: Option<usize>,
) -> (Vec<ClassRow>, Summary) {
    run_with(dev, n, period, round_size, queue_capacity, &TraceRecorder::counters_only())
}

/// [`run_sized`] against a caller-supplied recorder — the telemetry
/// experiment runs the same stream under counters-only and full tracing
/// to price the streams' overhead and prove the aggregates match.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_with(
    dev: &DeviceSpec,
    n: usize,
    period: usize,
    round_size: usize,
    queue_capacity: Option<usize>,
    rec: &TraceRecorder,
) -> (Vec<ClassRow>, Summary) {
    assert!(n >= period && n.is_multiple_of(period), "stream must be whole periods");
    let table = shape_table(period);
    let mut cfg = FleetConfig::new(dev);
    cfg.serve.profile_replay = true;
    cfg.serve.full_exec_every = FULL_EXEC_EVERY;
    if let Some(cap) = queue_capacity {
        cfg.serve.queue_capacity = cap;
    }
    let mut fleet = Fleet::new(dev.clone(), cfg);

    // Crash the shard that owns the stream's first shape — guaranteed to
    // hold cached plans and live traffic — at 40% of the first period;
    // warm-restart it from its snapshot at 50%.
    let (r0, c0, e0) = table[0];
    let victim = fleet.preferred_shard(r0, c0, e0);
    let crash_at = period * 2 / 5;
    let restart_at = period / 2;

    let mut agg = Agg {
        table: &table,
        class_requests: [0; 3],
        class_degraded: [0; 3],
        class_shed: [0; 3],
        launched_bytes: 0.0,
        sim_makespan_s: 0.0,
        rounds: 0,
        served: 0,
        degraded: 0,
        shed: 0,
        checks: 0,
        failures: 0,
        hot_intervals: Vec::new(),
    };
    let mut snapshot: Option<String> = None;
    let mut orphans_rerouted = 0usize;
    let mut plans_restored = 0usize;
    let mut backpressure_hits = 0u64;
    let mut rejected = 0u64;
    let mut in_round = 0usize;
    let mut round_idx = 0usize;
    let t0 = std::time::Instant::now();

    let mut crash_hot_start: Option<f64> = None;

    for i in 0..n as u64 {
        if i as usize == crash_at {
            crash_hot_start = Some(fleet.clock_s());
            let (snap, orphans) = fleet.crash_shard(victim, rec);
            orphans_rerouted = orphans.len();
            for orphan in orphans {
                submit_retry(
                    &mut fleet,
                    orphan,
                    &mut agg,
                    rec,
                    &mut backpressure_hits,
                    &mut rejected,
                );
            }
            snapshot = Some(snap);
        }
        if i as usize == restart_at {
            let snap = snapshot.as_ref().expect("crash precedes restart");
            plans_restored = fleet
                .restart_shard(victim, snap, rec)
                .expect("a self-written snapshot must restore");
            // The crash→restart window concentrates load on the
            // survivors; alerts in it are expected.
            let from = crash_hot_start.take().expect("crash precedes restart");
            agg.hot_intervals.push((from, fleet.clock_s()));
        }
        submit_retry(
            &mut fleet,
            make_request(&table, i),
            &mut agg,
            rec,
            &mut backpressure_hits,
            &mut rejected,
        );
        in_round += 1;
        // Every BURST_EVERY-th round doubles before draining — the
        // overload injector that exercises the degradation ladder.
        let burst = (round_idx + 1).is_multiple_of(BURST_EVERY);
        let target = if burst { round_size * 2 } else { round_size };
        if in_round >= target {
            drain(&mut fleet, &mut agg, rec, burst);
            in_round = 0;
            round_idx += 1;
        }
    }
    while fleet.backlog() > 0 {
        drain(&mut fleet, &mut agg, rec, false);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // Quantiles come from the recorder's bounded log2 latency histograms
    // (deterministic bucket upper edges, identical across engines).
    let wait_histo = |scope: &str| {
        rec.latency_histogram(scope, "queue_wait_us").unwrap_or_default()
    };
    let mut rows = Vec::with_capacity(3);
    let mut all_waits = LogHisto::new();
    for (c, name, scope) in [
        (0usize, "interactive", "class:interactive"),
        (1, "batch", "class:batch"),
        (2, "background", "class:background"),
    ] {
        let h = wait_histo(scope);
        all_waits.merge(&h);
        rows.push(ClassRow {
            class: name,
            requests: agg.class_requests[c],
            mean_wait_us: h.mean_us(),
            p99_wait_us: h.p99_us(),
            degraded: agg.class_degraded[c],
            shed: agg.class_shed[c],
        });
    }

    // Alerts outside every padded expected-hot interval are false
    // positives: clean periods must stay silent. The pad covers the
    // longest rule's look-back — a burst keeps burn rates above
    // threshold until its windows rotate out of the long window.
    let tcfg = fleet.telemetry().config();
    let pad_s = tcfg.window_s
        * tcfg.rules.iter().map(|r| r.long_windows).max().unwrap_or(0) as f64;
    let alerts = fleet.telemetry().alerts();
    let false_positives = alerts
        .iter()
        .filter(|a| {
            !agg.hot_intervals
                .iter()
                .any(|&(from, to)| a.at_s >= from && a.at_s <= to + pad_s)
        })
        .count() as u64;

    let hit_rate = fleet.aggregate_hit_rate();
    let full_execs: u64 = (0..fleet.num_shards()).map(|s| fleet.shard(s).full_execs()).sum();
    let replays: u64 =
        (0..fleet.num_shards()).map(|s| fleet.shard(s).profiled_replays()).sum();
    let failures = agg.failures;
    let summary = Summary {
        requests: agg.served,
        period,
        rounds: agg.rounds,
        crashed_shard: victim,
        crash_at,
        restart_at,
        orphans_rerouted,
        plans_restored,
        correctness_checks: agg.checks,
        correctness_failures: failures,
        hit_rate,
        effective_gbps: if agg.sim_makespan_s > 0.0 {
            2.0 * agg.launched_bytes / agg.sim_makespan_s / 1e9
        } else {
            0.0
        },
        slo_p50_wait_us: all_waits.p50_us(),
        slo_p99_wait_us: all_waits.p99_us(),
        slo_shed_rate: agg.shed as f64 / agg.served.max(1) as f64,
        slo_reject_rate: rejected as f64 / (agg.served + rejected).max(1) as f64,
        degraded: agg.degraded,
        shed: agg.shed,
        rejected,
        backpressure_hits,
        failovers: rec.counter("fleet", Counter::ShardFailovers),
        snapshot_restores: rec.counter("serve", Counter::SnapshotRestores),
        full_execs,
        profiled_replays: replays,
        sim_makespan_s: agg.sim_makespan_s,
        host_rps: if wall_s > 0.0 { agg.served as f64 / wall_s } else { 0.0 },
        alerts: alerts.len() as u64,
        slo_false_positive_alerts: false_positives,
        passed: failures == 0
            && hit_rate >= 0.90
            && agg.served >= n as u64
            && false_positives == 0,
    };
    (rows, summary)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[ClassRow], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.class.to_string(),
                format!("{}", r.requests),
                format!("{:.1}", r.mean_wait_us),
                format!("{:.1}", r.p99_wait_us),
                format!("{}", r.degraded),
                format!("{}", r.shed),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Robustness: sharded fleet soak (priorities, bursts, crash + warm restart)",
        &["class", "reqs", "mean us", "p99 us", "degraded", "shed"],
        &table,
    );
    out.push_str(&format!(
        "\n{} requests in {} rounds (period {}): p50 wait {:.1} us, p99 {:.1} us\n\
         degradation ladder: {} degraded, {} shed ({:.3}%), {} dropped ({:.4}%), \
         {} backpressure refusals absorbed\n\
         crash drill: shard {} down at request {}, {} orphans re-routed \
         ({} failovers), warm restart at {} restored {} plans \
         ({} snapshot restore)\n\
         plan-cache hit rate {:.2}% (floor 90%), {:.2} GB/s effective over {:.1} ms \
         simulated\n\
         verification: {} checks, {} failures; {} full executions, {} timing replays\n\
         SLO burn-rate alerts: {} fired, {} outside expected-hot windows (must be 0)\n\
         {}\n",
        summary.requests,
        summary.rounds,
        summary.period,
        summary.slo_p50_wait_us,
        summary.slo_p99_wait_us,
        summary.degraded,
        summary.shed,
        summary.slo_shed_rate * 100.0,
        summary.rejected,
        summary.slo_reject_rate * 100.0,
        summary.backpressure_hits,
        summary.crashed_shard,
        summary.crash_at,
        summary.orphans_rerouted,
        summary.failovers,
        summary.restart_at,
        summary.plans_restored,
        summary.snapshot_restores,
        summary.hit_rate * 100.0,
        summary.effective_gbps,
        summary.sim_makespan_s * 1e3,
        summary.correctness_checks,
        summary.correctness_failures,
        summary.full_execs,
        summary.profiled_replays,
        summary.alerts,
        summary.slo_false_positive_alerts,
        if summary.passed { "SOAK PASS" } else { "SOAK FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_periodic_and_mixed() {
        let table = shape_table(240);
        assert_eq!(table.len(), 240);
        let a = make_request(&table, 17);
        let b = make_request(&table, 17 + 240);
        assert_eq!((a.rows, a.cols, a.elem_bytes), (b.rows, b.cols, b.elem_bytes));
        // Payloads differ by id (the seed mixes the id in) but shapes
        // repeat exactly — the periodicity the 1M gate relies on.
        let classes: std::collections::HashSet<_> =
            (0..240u64).map(|i| make_request(&table, i).priority).collect();
        assert_eq!(classes.len(), 3, "all priority classes present");
        let shapes: std::collections::HashSet<_> =
            table.iter().copied().collect();
        assert!(shapes.len() >= 6, "mix covers most shape classes");
    }

    #[test]
    fn short_soak_passes_with_crash_and_degradation() {
        let dev = DeviceSpec::tesla_k20();
        // 2400 requests, tight queues (cap 24 → degrade at 18, shed at 22)
        // so bursts trip the whole ladder quickly; crash at 960, restart
        // at 1200.
        let (rows, summary) = run_sized(&dev, 2400, 2400, ROUND_SIZE, Some(24));
        assert_eq!(summary.requests, 2400 + summary.orphans_rerouted as u64 - summary.rejected,
            "every admitted request must be served exactly once (orphans resubmit)");
        assert_eq!(summary.correctness_failures, 0, "soak must be bit-correct");
        assert!(summary.correctness_checks > 0);
        assert!(summary.passed, "short soak must pass its own floors");
        assert!(summary.hit_rate >= 0.90, "hit rate {:.3}", summary.hit_rate);
        assert_eq!(summary.snapshot_restores, 1, "exactly one warm restart");
        assert!(summary.plans_restored > 0, "the victim had cached plans");
        assert!(summary.degraded > 0, "bursts must trip the conservative rung");
        assert!(summary.shed > 0, "bursts must trip the shed rung");
        assert!(summary.alerts > 0, "the crash drill and bursts must raise burn-rate alerts");
        assert_eq!(summary.slo_false_positive_alerts, 0, "clean periods must stay silent");
        assert!(summary.profiled_replays > summary.full_execs,
            "replay must carry most of the stream");
        assert!(summary.effective_gbps > 0.0 && summary.sim_makespan_s > 0.0);
        let by_class: u64 = rows.iter().map(|r| r.requests).sum();
        assert_eq!(by_class, summary.requests);
    }

    #[test]
    fn soak_is_deterministic() {
        let dev = DeviceSpec::tesla_k20();
        let (ra, sa) = run_sized(&dev, 1200, 1200, ROUND_SIZE, Some(24));
        let (rb, sb) = run_sized(&dev, 1200, 1200, ROUND_SIZE, Some(24));
        assert_eq!(sa.requests, sb.requests);
        assert_eq!(sa.rounds, sb.rounds);
        assert_eq!(sa.slo_p50_wait_us, sb.slo_p50_wait_us);
        assert_eq!(sa.slo_p99_wait_us, sb.slo_p99_wait_us);
        assert_eq!(sa.slo_shed_rate, sb.slo_shed_rate);
        assert_eq!(sa.degraded, sb.degraded);
        assert_eq!(sa.shed, sb.shed);
        assert_eq!(sa.sim_makespan_s, sb.sim_makespan_s);
        assert_eq!(sa.effective_gbps, sb.effective_gbps);
        assert_eq!(sa.alerts, sb.alerts);
        assert_eq!(sa.slo_false_positive_alerts, sb.slo_false_positive_alerts);
        for (a, b) in ra.iter().zip(&rb) {
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.p99_wait_us, b.p99_wait_us);
        }
    }
}
