//! **Table 2** — full in-place transposition throughput: the 3-stage
//! algorithm vs the Gustavson/Karlsson 4-stage (with and without stage 2–3
//! fusion) on the Tesla K20; plus the §4.1 single-stage data point.
//!
//! Paper: 3-stage 17.3–20.7 GB/s; 4-stage 6.9–7.2 GB/s (fused 7.4–7.8);
//! single-stage ≈ 1.5 GB/s; 4-stage needs *small* tiles (its 1000! stage
//! stages m·n-word super-elements on chip) while the 3-stage algorithm
//! tolerates the large tiles that make `100!` fast — that difference, not
//! stage count, is the headline.

use crate::workloads::{matrix_bytes, table2_sizes, Scale};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::StagePlan;
use ipt_core::{Matrix, TileConfig, TileHeuristic};
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use serde::Serialize;

/// One matrix-size row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// 3-stage throughput (GB/s).
    pub three_stage_gbps: f64,
    /// 3-stage tile used.
    pub tile3: (usize, usize),
    /// 4-stage throughput (GB/s).
    pub four_stage_gbps: f64,
    /// 4-stage + fusion throughput (GB/s).
    pub four_stage_fused_gbps: f64,
    /// 4-stage tile used.
    pub tile4: (usize, usize),
    /// Single-stage throughput (GB/s), if measured.
    pub single_stage_gbps: Option<f64>,
}

fn run_plan_gbps(dev: &DeviceSpec, rows: usize, cols: usize, plan: &StagePlan) -> f64 {
    let opts = GpuOptions::tuned_for(dev);
    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, rows, cols, plan, &opts)
        .expect("feasible plan");
    stats.throughput_gbps(matrix_bytes(rows, cols))
}

/// The 3-stage tile heuristic (paper §7.4 ranges).
#[must_use]
pub fn tile3_for(rows: usize, cols: usize, scale: Scale) -> TileConfig {
    let h = match scale {
        Scale::Full => TileHeuristic::default(),
        Scale::Reduced => {
            TileHeuristic { shared_capacity_words: 3600, preferred_lo: 30, preferred_hi: 90 }
        }
    };
    h.select(rows, cols).expect("table-2 sizes always tile")
}

/// The 4-stage tile heuristic: its 1000! stage stages whole m·n tiles in
/// local memory per SIMD unit, so small tiles are mandatory (the paper's
/// best 4-stage tile for 7200×1800 is (20, 16)).
#[must_use]
pub fn tile4_for(rows: usize, cols: usize) -> TileConfig {
    TileHeuristic { shared_capacity_words: 512, preferred_lo: 8, preferred_hi: 24 }
        .select(rows, cols)
        .expect("table-2 sizes always tile")
}

/// Run the experiment.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale, with_single_stage: bool) -> Vec<Row> {
    table2_sizes(scale)
        .into_iter()
        .map(|(rows, cols)| {
            let t3 = tile3_for(rows, cols, scale);
            let t4 = tile4_for(rows, cols);
            let p3 = StagePlan::three_stage(rows, cols, t3).expect("tile divides");
            let p4 = StagePlan::four_stage(rows, cols, t4).expect("tile divides");
            let p4f = StagePlan::four_stage_fused(rows, cols, t4).expect("tile divides");
            let single = with_single_stage
                .then(|| run_plan_gbps(dev, rows, cols, &StagePlan::single_stage(rows, cols)));
            Row {
                rows,
                cols,
                three_stage_gbps: run_plan_gbps(dev, rows, cols, &p3),
                tile3: (t3.m, t3.n),
                four_stage_gbps: run_plan_gbps(dev, rows, cols, &p4),
                four_stage_fused_gbps: run_plan_gbps(dev, rows, cols, &p4f),
                tile4: (t4.m, t4.n),
                single_stage_gbps: single,
            }
        })
        .collect()
}

/// Paper's Table 2 values for side-by-side display (K20, full scale).
pub const PAPER: [(usize, usize, f64, f64, f64); 6] = [
    (7200, 1800, 20.59, 7.11, 7.67),
    (5100, 2500, 18.49, 6.87, 7.38),
    (4000, 3200, 20.73, 7.23, 7.79),
    (3300, 3900, 18.80, 7.23, 7.79),
    (2500, 5100, 17.29, 6.86, 7.37),
    (1800, 7200, 18.70, 7.07, 7.60),
];

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let (pr3, pr4, pr4f) = PAPER
                .get(i)
                .map_or((0.0, 0.0, 0.0), |&(_, _, a, b, c)| (a, b, c));
            vec![
                format!("{}x{}", r.rows, r.cols),
                format!("{:.2}", r.three_stage_gbps),
                format!("{pr3:.2}"),
                format!("{:.2}", r.four_stage_gbps),
                format!("{pr4:.2}"),
                format!("{:.2}", r.four_stage_fused_gbps),
                format!("{pr4f:.2}"),
                r.single_stage_gbps.map_or("-".into(), |v| format!("{v:.2}")),
                format!("({},{})", r.tile3.0, r.tile3.1),
                format!("({},{})", r.tile4.0, r.tile4.1),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Table 2: 3-stage vs 4-stage (GB/s on Tesla K20)",
        &[
            "matrix", "3stg", "paper", "4stg", "paper", "4stg+f", "paper", "1stg", "tile3",
            "tile4",
        ],
        &table,
    );
    let avg3 = rows.iter().map(|r| r.three_stage_gbps).sum::<f64>() / rows.len() as f64;
    let avg4 = rows.iter().map(|r| r.four_stage_gbps).sum::<f64>() / rows.len() as f64;
    out.push_str(&format!(
        "\n3-stage/4-stage speedup: x{:.2}  [paper: ~3x]\n",
        avg3 / avg4
    ));
    out
}
