//! **§7.1 sweep** — optimised PTTWAC (spread + padded flags) vs the
//! original packed-flag PTTWAC across tile shapes, on all three GPUs, plus
//! the P-IPT comparison.
//!
//! Paper result (avg, min/max speedup): 1.85 (1.36/3.49) on GTX 580,
//! 1.79 (1.30/5.29) on K20, 1.90 (1.15/3.34) on Cape Verde; optimised
//! PTTWAC defeats P-IPT everywhere.

use crate::common::run_010;
use crate::workloads::{fill_instances, Scale};
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::InstancedTranspose;
use ipt_gpu::opts::FlagLayout;
use ipt_gpu::pipt::PiptKernel;
use serde::Serialize;

/// One device's aggregated sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSummary {
    /// Device name.
    pub device: String,
    /// Mean speedup of optimised over original PTTWAC.
    pub avg_speedup: f64,
    /// Minimum speedup observed.
    pub min_speedup: f64,
    /// Maximum speedup observed.
    pub max_speedup: f64,
    /// Number of (m, n) points measured.
    pub points: usize,
    /// Fraction of points where optimised PTTWAC also beats P-IPT.
    pub beats_pipt_fraction: f64,
}

/// Paper sweep: n ∈ 16..256, m ∈ 16..64; strides keep the run tractable.
#[must_use]
pub fn grid(scale: Scale) -> (Vec<usize>, Vec<usize>) {
    match scale {
        Scale::Full => ((16..=64).step_by(4).collect(), (16..=256).step_by(16).collect()),
        Scale::Reduced => ((16..=64).step_by(16).collect(), (16..=256).step_by(48).collect()),
    }
}

/// Pick the spreading factor the tuned kernel would use: the largest
/// factor in 2..=16 whose flag array still leaves room for at least four
/// resident work-groups (so spreading never *costs* occupancy — the
/// paper's practical guidance, footnote 3).
fn choose_factor(dev: &DeviceSpec, m: usize, n: usize) -> usize {
    for f in [16usize, 8, 4, 2] {
        let words = FlagLayout::SpreadPadded { factor: f }.words_needed(m * n);
        if words * 4 * 4 <= dev.local_mem_per_sm {
            return f;
        }
    }
    2
}

fn run_pipt_time(dev: &DeviceSpec, instances: usize, m: usize, n: usize) -> f64 {
    let op = InstancedTranspose::new(instances, m, n, 1);
    let table = PiptKernel::leader_table(instances, m, n);
    let mut sim = Sim::new(dev.clone(), op.total_len() + table.len() + 8);
    let data = sim.alloc(op.total_len());
    let leaders = sim.alloc(table.len().max(2));
    let v: Vec<u32> = (0..op.total_len() as u32).collect();
    sim.upload_u32(data, &v);
    sim.upload_u32(leaders, &table);
    let k = PiptKernel {
        data,
        leaders,
        num_leaders: table.len() / 2,
        instances,
        rows: m,
        cols: n,
        super_size: 1,
        wg_size: 128,
    };
    let stats = sim.launch(&k).expect("P-IPT launch");
    let mut want = v;
    op.apply_seq(&mut want);
    assert_eq!(sim.download_u32(data), want, "P-IPT incorrect");
    stats.time_s
}

/// Run the sweep on one device.
#[must_use]
pub fn run_device(dev: &DeviceSpec, scale: Scale) -> DeviceSummary {
    let (ms, ns) = grid(scale);
    let mut speedups = Vec::new();
    let mut beats_pipt = 0usize;
    let mut pipt_points = 0usize;
    for (i, &m) in ms.iter().enumerate() {
        for (j, &n) in ns.iter().enumerate() {
            let instances = fill_instances(m, n, scale);
            let packed = FlagLayout::Packed;
            if packed.words_needed(m * n) * 4 > dev.local_mem_per_wg {
                continue;
            }
            let (orig, _bytes) = run_010(dev, instances, m, n, 256, packed);
            let opt_layout = FlagLayout::SpreadPadded { factor: choose_factor(dev, m, n) };
            if opt_layout.words_needed(m * n) * 4 > dev.local_mem_per_wg {
                continue;
            }
            let (opt, _) = run_010(dev, instances, m, n, 256, opt_layout);
            speedups.push(orig.time_s / opt.time_s);
            // P-IPT on a diagonal subset (it is slow to simulate).
            if i == j {
                pipt_points += 1;
                let t_pipt = run_pipt_time(dev, instances.min(256), m, n);
                let (opt_small, _) =
                    run_010(dev, instances.min(256), m, n, 256, opt_layout);
                if opt_small.time_s < t_pipt {
                    beats_pipt += 1;
                }
            }
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    DeviceSummary {
        device: dev.name.to_string(),
        avg_speedup: avg,
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        points: speedups.len(),
        beats_pipt_fraction: if pipt_points == 0 {
            0.0
        } else {
            beats_pipt as f64 / pipt_points as f64
        },
    }
}

/// Run on the paper's three GPUs.
#[must_use]
pub fn run(scale: Scale) -> Vec<DeviceSummary> {
    [DeviceSpec::gtx580(), DeviceSpec::tesla_k20(), DeviceSpec::hd7750()]
        .iter()
        .map(|d| run_device(d, scale))
        .collect()
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[DeviceSummary]) -> String {
    let paper = [("GeForce GTX 580", 1.85), ("Tesla K20", 1.79), ("Radeon HD 7750", 1.90)];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let p = paper
                .iter()
                .find(|(n, _)| *n == r.device)
                .map_or(String::from("-"), |(_, v)| format!("{v:.2}"));
            vec![
                r.device.clone(),
                format!("{:.2}", r.avg_speedup),
                format!("{:.2}", r.min_speedup),
                format!("{:.2}", r.max_speedup),
                p,
                r.points.to_string(),
                format!("{:.0}%", r.beats_pipt_fraction * 100.0),
            ]
        })
        .collect();
    super::text_table(
        "S7.1: optimised vs original PTTWAC 010! (speedup)",
        &["device", "avg", "min", "max", "paper-avg", "points", "beats P-IPT"],
        &table,
    )
}
