//! `trace` — one fully traced 3-stage transposition (`100! → 0010! →
//! 0100!`), exported as a Chrome trace (open in `chrome://tracing` or
//! Perfetto) and Prometheus text exposition.
//!
//! This is the observability showcase rather than a measurement: it runs
//! the same pipeline the other experiments time, but with the
//! [`TraceRecorder`] attached, and hands back the raw exports plus a small
//! text digest of what was captured.

use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::{StagePlan, TileConfig};
use ipt_core::Matrix;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device_rec};
use ipt_obs::{chrome_trace_json, prometheus_text, Counter, Level, TraceRecorder};

use crate::workloads::Scale;

/// Everything a traced run produces.
#[derive(Debug, Clone)]
pub struct Report {
    /// Matrix shape traced.
    pub rows: usize,
    /// Matrix shape traced.
    pub cols: usize,
    /// Chrome trace-event JSON.
    pub chrome_json: String,
    /// Prometheus text exposition.
    pub prometheus: String,
    /// Stage span names in execution order (the factorial codes).
    pub stages: Vec<String>,
    /// Span counts per level: (algorithm, stage, kernel, warp).
    pub span_counts: (usize, usize, usize, usize),
    /// Headline counters: (dram bytes, position, lock, bank conflicts).
    pub headline: (u64, u64, u64, u64),
}

/// Run the traced 3-stage pipeline on `dev` at the given scale.
///
/// # Panics
///
/// Panics if the pipeline rejects the (known-good) plan or produces a wrong
/// transposition — a trace of a broken run would be worse than no trace.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> Report {
    let (rows, cols) = match scale {
        Scale::Full => (1440, 600),
        Scale::Reduced => (288, 120),
    };
    let plan = StagePlan::three_stage(rows, cols, TileConfig::new(24, 24))
        .expect("24x24 tiles divide both trace shapes");
    let opts = GpuOptions::tuned_for(dev);
    let rec = TraceRecorder::new();
    let mut sim = Sim::new(dev.clone(), rows * cols + plan_flag_words(&plan) + 64);
    let mut data = Matrix::iota(rows, cols).into_vec();
    transpose_on_device_rec(&mut sim, &mut data, rows, cols, &plan, &opts, &rec, 0.0)
        .expect("trace plan launches");
    assert_eq!(
        data,
        Matrix::iota(rows, cols).transposed().into_vec(),
        "traced run must still transpose correctly"
    );

    let spans = rec.spans();
    let count = |l: Level| spans.iter().filter(|s| s.level == l).count();
    let stages = spans
        .iter()
        .filter(|s| s.level == Level::Stage)
        .map(|s| s.name.to_string())
        .collect();
    Report {
        rows,
        cols,
        chrome_json: chrome_trace_json(&rec),
        prometheus: prometheus_text(&rec),
        stages,
        span_counts: (
            count(Level::Algorithm),
            count(Level::Stage),
            count(Level::Kernel),
            count(Level::Warp),
        ),
        headline: (
            rec.total(Counter::DramBytes),
            rec.total(Counter::PositionConflicts),
            rec.total(Counter::LockConflicts),
            rec.total(Counter::BankConflicts),
        ),
    }
}

/// Render the text digest.
#[must_use]
pub fn render(r: &Report) -> String {
    let (a, s, k, w) = r.span_counts;
    let (dram, pos, lock, bank) = r.headline;
    format!(
        "== trace: {}x{} three-stage run ==\n\
         stages: {}\n\
         spans: {a} algorithm, {s} stage, {k} kernel, {w} warp (sampled)\n\
         dram bytes {dram}, conflicts: position {pos}, lock {lock}, bank {bank}\n\
         chrome trace {} bytes, prometheus exposition {} bytes\n",
        r.rows,
        r.cols,
        r.stages.join(" -> "),
        r.chrome_json.len(),
        r.prometheus.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_run_digest_names_all_three_stages() {
        let r = run(&DeviceSpec::tesla_k20(), Scale::Reduced);
        assert_eq!(r.stages, vec!["100!", "0010!", "0100!"]);
        assert_eq!(r.span_counts.0, 1);
        assert_eq!(r.span_counts.1, 3);
        assert!(r.span_counts.2 >= 3);
        assert!(serde_json::from_str(&r.chrome_json).is_ok(), "export parses");
        let text = render(&r);
        assert!(text.contains("100! -> 0010! -> 0100!"), "{text}");
    }
}
