//! **Observability gate** — prices full tracing against counters-only and
//! proves the streams never change the aggregates.
//!
//! Runs the soak's deterministic 100k-request stream twice through
//! [`super::soak::run_with`]: once under a bounded counters-only recorder
//! (the production default — histograms and counters aggregate, spans and
//! events drop) and once under a full [`TraceRecorder`] that retains the
//! whole causal span/event stream. The run is always the reduced 100k
//! stream regardless of `--full`: streams-mode memory grows linearly with
//! spans, and pricing the overhead does not need a longer soak.
//!
//! Two properties gate:
//!
//! * **The streams are pure observation.** Every deterministic aggregate —
//!   class rows, queue-wait quantiles, shed/reject rates, burn-rate alert
//!   and false-positive counts, throughput, makespan, and every log2
//!   latency histogram bucket — must be bit-identical between the two
//!   modes. Tracing that perturbs what it observes is a bug, not a tax.
//! * **The streams are affordable.** Full tracing must add at most
//!   `--max-overhead-pct` (CI passes 5) host wall time over counters-only,
//!   measured as the ratio of per-mode minimum walls over [`TIMING_PAIRS`]
//!   interleaved attempts so background noise prices neither mode
//!   unfairly. Wall time is
//!   machine-specific, so the gate is evaluated in-process (exit 1 in
//!   `repro`) rather than against the committed baseline; the baseline
//!   gates the deterministic `slo_*`/throughput channels instead.

use crate::workloads::Scale;
use gpu_sim::DeviceSpec;
use ipt_obs::TraceRecorder;
use serde::Serialize;

use super::soak::{self, ClassRow, ROUND_SIZE};

/// Stream length priced by the telemetry gate (one soak period).
pub const REQUESTS: usize = 100_000;

/// Interleaved timing attempts per recorder mode; the gated overhead is
/// the ratio of the per-mode minimum walls (see [`run`]).
pub const TIMING_PAIRS: usize = 3;

/// Default ceiling on the full-tracing wall-time overhead, percent.
pub const DEFAULT_MAX_OVERHEAD_PCT: f64 = 5.0;

/// One recorder mode's cost and stream volume.
#[derive(Debug, Clone, Serialize)]
pub struct ModeRow {
    /// Recorder mode (`counters-only` / `full-tracing`).
    pub mode: &'static str,
    /// Best host wall time for the whole soak over the timing pairs,
    /// seconds (machine-specific; `host_` keys are not checked metrics).
    pub host_wall_s: f64,
    /// Host wall requests/second (machine-specific).
    pub host_rps: f64,
    /// Distinct trace ids retained (0 in counters-only mode).
    pub traces: u64,
    /// Spans retained (0 in counters-only mode).
    pub spans: u64,
    /// Events retained (0 in counters-only mode).
    pub events: u64,
}

/// Telemetry-gate summary. `slo_*` and `effective_gbps` gate against the
/// committed baseline; the overhead gate is in-process via `passed`.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Requests served per mode.
    pub requests: u64,
    /// Fleet rounds processed per mode.
    pub rounds: u64,
    /// Deterministic aggregate throughput (GB/s; throughput gate).
    pub effective_gbps: f64,
    /// p50 simulated queue wait, microseconds (SLO gate).
    pub slo_p50_wait_us: f64,
    /// p99 simulated queue wait, microseconds (SLO gate).
    pub slo_p99_wait_us: f64,
    /// Shed requests / served requests (SLO gate).
    pub slo_shed_rate: f64,
    /// Burn-rate alerts outside expected-hot windows (SLO gate; the
    /// committed baseline of 0 gates absolutely).
    pub slo_false_positive_alerts: u64,
    /// Burn-rate alerts fired over the soak (identical in both modes).
    pub alerts: u64,
    /// Best counters-only wall time over the timing pairs, seconds
    /// (machine-specific).
    pub host_wall_counters_s: f64,
    /// Best full-tracing wall time over the timing pairs, seconds
    /// (machine-specific).
    pub host_wall_full_s: f64,
    /// Full-tracing overhead over counters-only: the ratio of the
    /// per-mode minimum walls, percent (machine-specific; gated
    /// in-process).
    pub overhead_pct: f64,
    /// The in-process ceiling `overhead_pct` was gated against.
    pub max_overhead_pct: f64,
    /// Were all deterministic aggregates (rows, summary fields, every
    /// latency histogram) bit-identical between the two modes?
    pub aggregates_match: bool,
    /// Both soaks passed, the aggregates match, and the overhead is under
    /// the ceiling.
    pub passed: bool,
}

/// Everything about a soak run that must not depend on the recorder mode.
/// `host_rps` (wall-clock) is deliberately excluded.
fn deterministic_view(
    rows: &[ClassRow],
    summary: &soak::Summary,
    rec: &TraceRecorder,
) -> String {
    let histos: Vec<String> = rec
        .latency_histograms()
        .iter()
        .map(|(scope, name, h)| {
            format!("{scope}/{name}: n={} sum={} p50={} p99={}",
                h.count(), h.sum_us(), h.p50_us(), h.p99_us())
        })
        .collect();
    format!(
        "rows={} req={} rounds={} p50={} p99={} shed={} reject={} gbps={} \
         makespan={} degraded={} shed_n={} alerts={} fp={} hit={} full={} \
         replays={} histos={histos:?}",
        serde_json::to_string(&rows).expect("rows serialize"),
        summary.requests,
        summary.rounds,
        summary.slo_p50_wait_us,
        summary.slo_p99_wait_us,
        summary.slo_shed_rate,
        summary.slo_reject_rate,
        summary.effective_gbps,
        summary.sim_makespan_s,
        summary.degraded,
        summary.shed,
        summary.alerts,
        summary.slo_false_positive_alerts,
        summary.hit_rate,
        summary.full_execs,
        summary.profiled_replays,
    )
}

/// Run the gate. `scale` is accepted for harness uniformity but the stream
/// is always the reduced 100k soak (see module docs).
#[must_use]
pub fn run(dev: &DeviceSpec, _scale: Scale, max_overhead_pct: f64) -> (Vec<ModeRow>, Summary) {
    let n = REQUESTS;

    // Host wall clock on a shared machine jitters by more than the gate's
    // ceiling, so single-shot timing is untrustworthy in either direction.
    // Each mode gets [`TIMING_PAIRS`] interleaved attempts and the gated
    // overhead is the ratio of the per-mode *minimum* walls: the minimum
    // converges on the machine's quiet-time cost of the work, and
    // interleaving keeps slow weather from landing entirely on one mode.
    // The aggregates are deterministic, so keeping the last run of each
    // mode loses nothing.
    let mut wall_counters_s = f64::INFINITY;
    let mut wall_full_s = f64::INFINITY;
    let mut counters_out = None;
    let mut full_out = None;
    for _ in 0..TIMING_PAIRS {
        let counters = TraceRecorder::counters_only();
        let t0 = std::time::Instant::now();
        let out = soak::run_with(dev, n, n, ROUND_SIZE, None, &counters);
        wall_counters_s = wall_counters_s.min(t0.elapsed().as_secs_f64());
        counters_out = Some((out, counters));

        let full = TraceRecorder::new();
        let t0 = std::time::Instant::now();
        let out = soak::run_with(dev, n, n, ROUND_SIZE, None, &full);
        wall_full_s = wall_full_s.min(t0.elapsed().as_secs_f64());
        full_out = Some((out, full));
    }
    let ((rows_c, sum_c), counters) = counters_out.expect("timing rounds ran");
    let ((rows_f, sum_f), full) = full_out.expect("timing rounds ran");

    let aggregates_match = deterministic_view(&rows_c, &sum_c, &counters)
        == deterministic_view(&rows_f, &sum_f, &full);
    let overhead_pct = if wall_counters_s > 0.0 {
        (wall_full_s - wall_counters_s) / wall_counters_s * 100.0
    } else {
        0.0
    };

    let mode_row = |mode, wall_s: f64, sum: &soak::Summary, rec: &TraceRecorder| ModeRow {
        mode,
        host_wall_s: wall_s,
        host_rps: if wall_s > 0.0 { sum.requests as f64 / wall_s } else { 0.0 },
        traces: rec.trace_ids().len() as u64,
        spans: rec.spans().len() as u64,
        events: rec.events().len() as u64,
    };
    let rows = vec![
        mode_row("counters-only", wall_counters_s, &sum_c, &counters),
        mode_row("full-tracing", wall_full_s, &sum_f, &full),
    ];

    let summary = Summary {
        requests: sum_c.requests,
        rounds: sum_c.rounds,
        effective_gbps: sum_c.effective_gbps,
        slo_p50_wait_us: sum_c.slo_p50_wait_us,
        slo_p99_wait_us: sum_c.slo_p99_wait_us,
        slo_shed_rate: sum_c.slo_shed_rate,
        slo_false_positive_alerts: sum_c.slo_false_positive_alerts,
        alerts: sum_c.alerts,
        host_wall_counters_s: wall_counters_s,
        host_wall_full_s: wall_full_s,
        overhead_pct,
        max_overhead_pct,
        aggregates_match,
        passed: sum_c.passed
            && sum_f.passed
            && aggregates_match
            && overhead_pct <= max_overhead_pct,
    };
    (rows, summary)
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[ModeRow], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.2}", r.host_wall_s),
                format!("{:.0}", r.host_rps),
                format!("{}", r.traces),
                format!("{}", r.spans),
                format!("{}", r.events),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Observability: telemetry overhead and aggregate-purity gate",
        &["recorder", "wall s", "req/s", "traces", "spans", "events"],
        &table,
    );
    out.push_str(&format!(
        "\n{} requests in {} rounds: p50 wait {:.1} us, p99 {:.1} us, \
         {:.2} GB/s effective\n\
         alerts: {} fired, {} false positives (must be 0)\n\
         aggregates bit-identical across recorder modes: {}\n\
         full-tracing overhead: {:+.2}% wall over counters-only \
         (ceiling {:.1}%)\n\
         {}\n",
        summary.requests,
        summary.rounds,
        summary.slo_p50_wait_us,
        summary.slo_p99_wait_us,
        summary.effective_gbps,
        summary.alerts,
        summary.slo_false_positive_alerts,
        if summary.aggregates_match { "yes" } else { "NO" },
        summary.overhead_pct,
        summary.max_overhead_pct,
        if summary.passed { "TELEMETRY PASS" } else { "TELEMETRY FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature of the gate: same stream, both recorder modes, the
    /// deterministic views must collide and the short soaks must pass.
    #[test]
    fn aggregates_are_recorder_independent() {
        let dev = DeviceSpec::tesla_k20();
        let counters = TraceRecorder::counters_only();
        let (rc, sc) = soak::run_with(&dev, 1200, 1200, ROUND_SIZE, Some(24), &counters);
        let full = TraceRecorder::new();
        let (rf, sf) = soak::run_with(&dev, 1200, 1200, ROUND_SIZE, Some(24), &full);
        assert!(sc.passed && sf.passed, "both modes pass the soak floors");
        assert_eq!(
            deterministic_view(&rc, &sc, &counters),
            deterministic_view(&rf, &sf, &full),
            "streams must not perturb the aggregates"
        );
        assert!(!full.spans().is_empty() && counters.spans().is_empty());
    }
}
