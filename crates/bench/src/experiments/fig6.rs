//! **Figure 6** — effect of flag spreading and padding on the `010!`
//! (PTTWAC) kernel, Tesla K20.
//!
//! Paper result: spreading raises throughput ×1.77 on average, padding a
//! further ≈12 %; occupancy losses at spreading 32 cause visible drops.

use crate::common::run_010;
use crate::workloads::{fig6_inputs, fill_instances, Scale};
use gpu_sim::DeviceSpec;
use ipt_gpu::opts::FlagLayout;
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Input name (tile width in parentheses in the figure).
    pub input: String,
    /// Tile width n.
    pub n: usize,
    /// Tile height m ∈ {16, 32, 64}.
    pub m: usize,
    /// Spreading factor (1 = packed, Eq. 2).
    pub spreading: usize,
    /// Padding applied?
    pub padded: bool,
    /// Simulated throughput, GB/s (paper convention).
    pub gbps: f64,
    /// Occupancy of the launch.
    pub occupancy: f64,
    /// Intra-warp same-word atomic collisions.
    pub position_conflicts: u64,
    /// Bank conflicts.
    pub bank_conflicts: u64,
    /// Lock conflicts.
    pub lock_conflicts: u64,
}

/// Aggregate findings matching the numbers the paper quotes.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Mean speedup of the best spreading factor over packed flags
    /// (paper: ×1.77).
    pub avg_spreading_speedup: f64,
    /// Mean additional gain of padding at the best spreading factor
    /// (paper: ≈ +12 %).
    pub avg_padding_gain: f64,
    /// Number of configurations where spreading 32 drops below 50 %
    /// occupancy (the paper's noted performance drops).
    pub occupancy_drops: usize,
}

/// Spreading factors exercised (the figure sweeps 1..32; powers of two
/// capture the curve).
pub const FACTORS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Tile heights exercised (the figure's three m values).
pub const HEIGHTS: [usize; 3] = [16, 32, 64];

/// Run the experiment.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<Row>, Summary) {
    let mut rows = Vec::new();
    for input in fig6_inputs() {
        for m in HEIGHTS {
            let instances = fill_instances(m, input.n, scale);
            for factor in FACTORS {
                for padded in [false, true] {
                    if factor == 1 && padded {
                        continue; // padding applies to spread layouts
                    }
                    let flags = FlagLayout::for_factor(factor, padded);
                    // Skip layouts whose flag storage cannot fit one WG.
                    if flags.words_needed(m * input.n) * 4 > dev.local_mem_per_wg {
                        continue;
                    }
                    let (stats, bytes) = run_010(dev, instances, m, input.n, 256, flags);
                    rows.push(Row {
                        input: format!("{} ({})", input.name, input.n),
                        n: input.n,
                        m,
                        spreading: factor,
                        padded,
                        gbps: stats.throughput_gbps(bytes),
                        occupancy: stats.occupancy.occupancy,
                        position_conflicts: stats.position_conflicts,
                        bank_conflicts: stats.bank_conflicts,
                        lock_conflicts: stats.lock_conflicts,
                    });
                }
            }
        }
    }
    let summary = summarise(&rows);
    (rows, summary)
}

/// Compute the paper-style aggregates.
#[must_use]
pub fn summarise(rows: &[Row]) -> Summary {
    let mut spread_speedups = Vec::new();
    let mut padding_gains = Vec::new();
    let mut drops = 0;
    // Group by (input, m).
    let mut keys: Vec<(String, usize)> =
        rows.iter().map(|r| (r.input.clone(), r.m)).collect();
    keys.sort();
    keys.dedup();
    for (input, m) in keys {
        let group: Vec<&Row> = rows.iter().filter(|r| r.input == input && r.m == m).collect();
        let packed = group.iter().find(|r| r.spreading == 1 && !r.padded);
        let best_spread = group
            .iter()
            .filter(|r| !r.padded && r.spreading > 1)
            .max_by(|a, b| a.gbps.total_cmp(&b.gbps));
        if let (Some(p), Some(s)) = (packed, best_spread) {
            spread_speedups.push(s.gbps / p.gbps);
            if let Some(sp) = group
                .iter()
                .find(|r| r.padded && r.spreading == s.spreading)
            {
                padding_gains.push(sp.gbps / s.gbps - 1.0);
            }
        }
        drops += group
            .iter()
            .filter(|r| r.spreading == 32 && r.occupancy < 0.5)
            .count()
            .min(1);
    }
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    Summary {
        avg_spreading_speedup: mean(&spread_speedups),
        avg_padding_gain: mean(&padding_gains),
        occupancy_drops: drops,
    }
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], summary: &Summary) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.input.clone(),
                r.m.to_string(),
                r.spreading.to_string(),
                if r.padded { "yes" } else { "no" }.to_string(),
                format!("{:.2}", r.gbps),
                format!("{:.2}", r.occupancy),
                r.position_conflicts.to_string(),
                r.bank_conflicts.to_string(),
                r.lock_conflicts.to_string(),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Figure 6: spreading & padding on transposition 010! (PTTWAC)",
        &["input", "m", "spread", "pad", "GB/s", "occ", "pos-conf", "bank-conf", "lock-conf"],
        &table_rows,
    );
    out.push_str(&format!(
        "\nspreading speedup (avg): x{:.2}   [paper: x1.77]\n\
         padding gain (avg):      {:+.1}%  [paper: +12%]\n\
         spreading-32 occupancy drops: {} inputs [paper: noted for several]\n",
        summary.avg_spreading_speedup,
        summary.avg_padding_gain * 100.0,
        summary.occupancy_drops
    ));
    out
}
