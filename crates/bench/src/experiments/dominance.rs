//! **Scheme dominance sweep** — the C2R/R2C decomposition (Catanzaro,
//! Keller & Garland) against every rival scheme, per shape.
//!
//! The paper's §7.4 limitation is the prime-shape slow path: when no good
//! tile exists the staged algorithm degrades, and the old planner fell back
//! to coprime cycle-following (or the single-stage pass) instead. This
//! experiment is the gate that the C2R scheme actually removed that slow
//! path:
//!
//! * per sweep shape it measures the C2R device pipeline against coprime
//!   cycle-following (where launchable), the planner's staged plan (where a
//!   tile exists), and the single-stage `100!` fallback, all
//!   correctness-asserted;
//! * it probes the planner over the sweep grid **plus paper-class prime
//!   shapes** (the 7919×104729 family, far too large to simulate) and
//!   fails if any prime/near-prime request still resolves to
//!   [`Scheme::Coprime`] or [`Scheme::SingleStage`];
//! * `passed` requires C2R to beat coprime on **every** contested
//!   (gcd = 1, coprime-launchable) shape.
//!
//! `repro dominance` exits 1 when the gate fails; the committed
//! `bench_out/dominance.json` baseline additionally gates throughput drift
//! under `repro --check`.

use crate::workloads::Scale;
use gpu_sim::{DeviceSpec, Sim};
use ipt_core::stages::StagePlan;
use ipt_core::{decide_scheme, Matrix, Scheme, TileHeuristic};
use ipt_gpu::coprime::transpose_coprime_on_device;
use ipt_gpu::opts::GpuOptions;
use ipt_gpu::pipeline::{plan_flag_words, transpose_on_device};
use ipt_gpu::{c2r_scratch_words, transpose_c2r_on_device};
use serde::Serialize;

/// One sweep shape: every rival measured on the simulated device.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// gcd(rows, cols) — 1 on the prime/near-prime shapes.
    pub gcd: usize,
    /// What `decide_scheme` picks for this shape.
    pub planner: String,
    /// C2R decomposition (GB/s) — total over every shape.
    pub c2r_gbps: f64,
    /// Coprime cycle-following (GB/s); `None` when gcd > 1 or the kernels
    /// cannot launch (a row longer than the scratchpad).
    pub coprime_gbps: Option<f64>,
    /// The planner's staged plan (GB/s); `None` when no tile exists.
    pub staged_gbps: Option<f64>,
    /// Single-stage `100!` fallback (GB/s) — the paper's own prime-shape
    /// answer.
    pub single_gbps: Option<f64>,
    /// Fastest scheme on this shape.
    pub winner: String,
}

/// One planner probe: shapes too large to simulate still get a decision.
#[derive(Debug, Clone, Serialize)]
pub struct Probe {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
    /// The decided scheme's name.
    pub scheme: String,
}

/// Sweep verdict: the dominance gate.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    /// Shapes measured.
    pub shapes: usize,
    /// Shapes where coprime launched and contested C2R (gcd = 1).
    pub contested: usize,
    /// Contested shapes where C2R won.
    pub c2r_wins: usize,
    /// Worst C2R-over-coprime ratio across contested shapes (> 1 means
    /// C2R dominated everywhere).
    pub min_speedup_vs_coprime: f64,
    /// gcd = 1 shapes where the coprime kernels could not even launch
    /// (line longer than the scratchpad) while C2R still ran.
    pub coprime_infeasible: usize,
    /// Planner probes (sweep grid + paper-class prime shapes).
    pub probes: usize,
    /// Probes that resolved to coprime cycle-following (must be 0).
    pub probe_coprime: usize,
    /// Probes that resolved to the single-stage fallback (must be 0).
    pub probe_single_stage: usize,
    /// The gate: C2R won every contest and no probe hit a slow path.
    pub passed: bool,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 { a } else { gcd(b, a % b) }
}

/// The measured sweep grid: prime / near-prime shapes (the slow path under
/// test), one composite shape where the staged family is at its best, and
/// one long-line prime shape that forces the C2R scratch path and defeats
/// the coprime kernels entirely.
#[must_use]
pub fn shapes(scale: Scale) -> Vec<(usize, usize)> {
    let mut v = vec![(1009, 251), (509, 521), (761, 128), (480, 360), (61, 13001)];
    if scale == Scale::Full {
        v.extend([(997, 512), (251, 1013), (720, 480)]);
    }
    v
}

/// Planner-only probes: the paper-class prime shapes (7919×104729 is
/// ~830 M words — nothing to simulate, but the *decision* must already be
/// right) plus smaller prime-shape variants.
#[must_use]
pub fn probe_shapes(scale: Scale) -> Vec<(usize, usize)> {
    let mut v = shapes(scale);
    v.extend([(7919, 104_729), (104_729, 7919), (7919, 512), (104_729, 3)]);
    v
}

/// Measure the C2R device pipeline, correctness-asserted.
fn measure_c2r(dev: &DeviceSpec, r: usize, c: usize) -> f64 {
    let wg = 256.min(dev.max_threads_per_wg);
    let scratch = c2r_scratch_words(dev, r, c, wg);
    let mut sim = Sim::new(dev.clone(), r * c + scratch + 8);
    let buf = sim.alloc(r * c);
    let mat = Matrix::iota(r, c);
    sim.upload_u32(buf, mat.as_slice());
    let stats = transpose_c2r_on_device(&mut sim, buf, r, c, wg).expect("c2r launch");
    assert_eq!(sim.download_u32(buf), mat.transposed().into_vec(), "device c2r incorrect");
    stats.throughput_gbps((r * c * 4) as f64)
}

/// Measure coprime cycle-following; `None` when gcd > 1 or the launch is
/// infeasible on this device.
fn measure_coprime(dev: &DeviceSpec, r: usize, c: usize) -> Option<f64> {
    if gcd(r, c) != 1 {
        return None;
    }
    let mut sim = Sim::new(dev.clone(), r * c + 8);
    let buf = sim.alloc(r * c);
    let mat = Matrix::iota(r, c);
    sim.upload_u32(buf, mat.as_slice());
    let stats = transpose_coprime_on_device(&sim, buf, r, c, 256).ok()?;
    assert_eq!(sim.download_u32(buf), mat.transposed().into_vec(), "device coprime incorrect");
    Some(stats.throughput_gbps((r * c * 4) as f64))
}

/// Measure a staged plan (3-stage where the planner has a tile, otherwise
/// `None`); `transpose_on_device` verifies the permutation internally.
fn measure_plan(dev: &DeviceSpec, r: usize, c: usize, plan: &StagePlan) -> Option<f64> {
    let opts = GpuOptions::tuned_for(dev);
    let mut sim = Sim::new(dev.clone(), r * c + plan_flag_words(plan) + 64);
    let mut data = Matrix::iota(r, c).into_vec();
    let stats = transpose_on_device(&mut sim, &mut data, r, c, plan, &opts).ok()?;
    Some(stats.throughput_gbps((r * c * 4) as f64))
}

/// Run the sweep and the planner probes.
#[must_use]
pub fn run(dev: &DeviceSpec, scale: Scale) -> (Vec<Row>, Vec<Probe>, Summary) {
    let heuristic = TileHeuristic::default();
    let rows: Vec<Row> = shapes(scale)
        .into_iter()
        .map(|(r, c)| {
            let decision = decide_scheme(r, c, &heuristic);
            let c2r_gbps = measure_c2r(dev, r, c);
            let coprime_gbps = measure_coprime(dev, r, c);
            let staged_gbps = match decision.scheme {
                Scheme::Staged | Scheme::GcdTiled | Scheme::SquareTiled => decision
                    .staged_plan(r, c)
                    .and_then(|plan| measure_plan(dev, r, c, &plan)),
                _ => None,
            };
            let single_gbps = measure_plan(dev, r, c, &StagePlan::single_stage(r, c));
            let mut candidates = vec![("c2r", c2r_gbps)];
            candidates.extend(coprime_gbps.map(|g| ("coprime", g)));
            candidates.extend(staged_gbps.map(|g| ("staged", g)));
            candidates.extend(single_gbps.map(|g| ("single-stage", g)));
            let winner = candidates
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|&(n, _)| n.to_string())
                .unwrap_or_default();
            Row {
                rows: r,
                cols: c,
                gcd: gcd(r, c),
                planner: decision.scheme.name().to_string(),
                c2r_gbps,
                coprime_gbps,
                staged_gbps,
                single_gbps,
                winner,
            }
        })
        .collect();

    let probes: Vec<Probe> = probe_shapes(scale)
        .into_iter()
        .map(|(r, c)| Probe {
            rows: r,
            cols: c,
            scheme: decide_scheme(r, c, &heuristic).scheme.name().to_string(),
        })
        .collect();

    let contested: Vec<&Row> = rows.iter().filter(|r| r.coprime_gbps.is_some()).collect();
    let c2r_wins = contested
        .iter()
        .filter(|r| r.coprime_gbps.is_some_and(|g| r.c2r_gbps > g))
        .count();
    let min_speedup_vs_coprime = contested
        .iter()
        .filter_map(|r| r.coprime_gbps.map(|g| r.c2r_gbps / g))
        .fold(f64::INFINITY, f64::min);
    let min_speedup_vs_coprime =
        if min_speedup_vs_coprime.is_finite() { min_speedup_vs_coprime } else { 0.0 };
    let coprime_infeasible =
        rows.iter().filter(|r| r.gcd == 1 && r.coprime_gbps.is_none()).count();
    let probe_coprime = probes.iter().filter(|p| p.scheme == "coprime").count();
    let probe_single_stage = probes.iter().filter(|p| p.scheme == "single-stage").count();
    let summary = Summary {
        shapes: rows.len(),
        contested: contested.len(),
        c2r_wins,
        min_speedup_vs_coprime,
        coprime_infeasible,
        probes: probes.len(),
        probe_coprime,
        probe_single_stage,
        passed: !contested.is_empty()
            && c2r_wins == contested.len()
            && probe_coprime == 0
            && probe_single_stage == 0,
    };
    (rows, probes, summary)
}

fn opt(g: Option<f64>) -> String {
    g.map_or_else(|| "—".to_string(), |g| format!("{g:.2}"))
}

/// Render the text report.
#[must_use]
pub fn render(rows: &[Row], probes: &[Probe], summary: &Summary) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.rows, r.cols),
                r.gcd.to_string(),
                r.planner.clone(),
                format!("{:.2}", r.c2r_gbps),
                opt(r.coprime_gbps),
                opt(r.staged_gbps),
                opt(r.single_gbps),
                r.winner.clone(),
            ]
        })
        .collect();
    let mut out = super::text_table(
        "Dominance: C2R decomposition vs rival schemes per shape (— = not launchable)",
        &["matrix", "gcd", "planner", "C2R", "coprime", "staged", "1-stage", "winner"],
        &table,
    );
    out.push_str(&format!(
        "\nC2R vs coprime: won {}/{} contested shapes, worst ratio x{:.2}; \
         {} gcd=1 shape(s) where coprime cannot launch at all\n",
        summary.c2r_wins, summary.contested, summary.min_speedup_vs_coprime,
        summary.coprime_infeasible,
    ));
    let fallbacks: Vec<String> = probes
        .iter()
        .filter(|p| p.scheme == "coprime" || p.scheme == "single-stage")
        .map(|p| format!("{}x{} -> {}", p.rows, p.cols, p.scheme))
        .collect();
    out.push_str(&format!(
        "planner probes ({} shapes incl. 7919x104729-class): {} coprime, {} single-stage \
         fallback(s){}\n",
        summary.probes,
        summary.probe_coprime,
        summary.probe_single_stage,
        if fallbacks.is_empty() {
            String::new()
        } else {
            format!("  [{}]", fallbacks.join(", "))
        },
    ));
    out.push_str(&format!(
        "gate: {}  [C2R must win every contested shape; no probe may fall back to \
         coprime or single-stage]\n",
        if summary.passed { "PASS" } else { "FAIL" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_grid_covers_the_paper_class_shape_and_never_falls_back() {
        for scale in [Scale::Reduced, Scale::Full] {
            let probes = probe_shapes(scale);
            assert!(probes.contains(&(7919, 104_729)));
            let heuristic = TileHeuristic::default();
            for (r, c) in probes {
                let d = decide_scheme(r, c, &heuristic);
                assert!(
                    d.scheme != Scheme::Coprime && d.scheme != Scheme::SingleStage,
                    "{r}x{c} resolved to the {} slow path",
                    d.scheme.name()
                );
            }
        }
    }

    #[test]
    fn sweep_has_both_contested_and_scratch_shapes() {
        let s = shapes(Scale::Reduced);
        assert!(s.iter().any(|&(r, c)| gcd(r, c) == 1));
        assert!(s.iter().any(|&(r, c)| gcd(r, c) > 1));
        // The long-line shape must overflow the K20 scratchpad for the
        // coprime row kernel, so the sweep exercises "coprime cannot even
        // launch" territory.
        assert!(s.iter().any(|&(_, c)| c > 12_288));
    }
}
