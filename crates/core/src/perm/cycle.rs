//! The transposition permutation and its cycle structure.
//!
//! Transposing a row-major `rows × cols` matrix in place moves the element at
//! linear offset `k` to offset
//!
//! ```text
//! k' = k·rows mod (rows·cols − 1)        for 0 ≤ k < rows·cols − 1
//! k' = rows·cols − 1                     for k = rows·cols − 1
//! ```
//!
//! (Equation (1) of the paper.) This permutation factors into disjoint
//! cycles; the paper's running example is the 5×3 matrix with cycles
//! `(0)(1 5 11 13 9 3)(7)(2 10 8 12 4 6)(14)`.
//!
//! Cycle structure determines available parallelism (one cycle = one
//! independent chain of shifts) and load balance (Cate & Twigg: the longest
//! cycle is always a multiple of every other cycle length).

use crate::numtheory::{divisors, gcd, multiplicative_order, pow_mod, totient};

/// The permutation induced by in-place transposition of a row-major
/// `rows × cols` array (elements may be super-elements of any fixed size —
/// the permutation acts on super-element indices).
///
/// ```
/// use ipt_core::TransposePerm;
/// // The paper's 5×3 example: cycle (1 5 11 13 9 3).
/// let p = TransposePerm::new(5, 3);
/// assert_eq!(p.dest(1), 5);
/// assert_eq!(p.cycle_from(1), vec![1, 5, 11, 13, 9, 3]);
/// assert_eq!(p.cycle_count(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransposePerm {
    /// Number of rows of the *source* matrix.
    pub rows: usize,
    /// Number of columns of the *source* matrix.
    pub cols: usize,
}

impl TransposePerm {
    /// Create the permutation for a `rows × cols` transposition.
    ///
    /// # Panics
    /// Panics if `rows == 0 || cols == 0`, or if `rows·cols` overflows
    /// `usize` (the index arithmetic would silently wrap — see
    /// [`crate::check`]).
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols)
            .unwrap_or_else(|| panic!("degenerate or oversized matrix {rows}x{cols}"))
    }

    /// Non-panicking constructor: `None` when a dimension is zero or the
    /// element count `rows·cols` does not fit `usize` (on which every
    /// cycle-following index computation would wrap).
    #[must_use]
    pub fn try_new(rows: usize, cols: usize) -> Option<Self> {
        if rows == 0 || cols == 0 {
            return None;
        }
        let words = crate::check::checked_words(rows, cols)?;
        usize::try_from(words).ok()?;
        Some(Self { rows, cols })
    }

    /// Total number of elements `rows·cols`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the permutation acts on an empty or 1-element set.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The modulus `M = rows·cols − 1` of Equation (1).
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> usize {
        self.len() - 1
    }

    /// Destination offset of the element currently at offset `k`
    /// (Equation (1)): where the element *moves to*.
    #[inline]
    #[must_use]
    pub fn dest(&self, k: usize) -> usize {
        debug_assert!(k < self.len());
        let m = self.modulus();
        if m == 0 || k == m {
            return k;
        }
        // rows·cols fits in usize; k·rows may overflow 32-bit but we are on
        // 64-bit targets; use u128 to be airtight for pathological sizes.
        ((k as u128 * self.rows as u128) % m as u128) as usize
    }

    /// Source offset: which element moves *into* offset `k` (inverse
    /// permutation). `src(dest(k)) == k`.
    #[inline]
    #[must_use]
    pub fn src(&self, k: usize) -> usize {
        debug_assert!(k < self.len());
        let m = self.modulus();
        if m == 0 || k == m {
            return k;
        }
        // Inverse of multiplication by `rows` mod m is multiplication by
        // `cols`, because rows·cols ≡ 1 (mod rows·cols − 1).
        ((k as u128 * self.cols as u128) % m as u128) as usize
    }

    /// Jump `t` steps along the cycle through `k` in `O(log t)`:
    /// `dest^t(k) = k · rows^t mod (rows·cols − 1)`.
    ///
    /// This is what makes a-priori cycle splitting cheap (Gustavson/Karlsson
    /// split long cycles among threads without walking them).
    #[must_use]
    pub fn dest_pow(&self, k: usize, t: u64) -> usize {
        debug_assert!(k < self.len());
        let m = self.modulus() as u64;
        if m == 0 || k as u64 == m {
            return k;
        }
        let step = pow_mod(self.rows as u64, t, m);
        ((k as u128 * step as u128) % m as u128) as usize
    }

    /// Length of the cycle containing offset `k`.
    ///
    /// For `k` with `g = gcd(k, M)`, the cycle length is the multiplicative
    /// order of `rows` modulo `M/g`. Fixed points (`k ∈ {0, M}`) have
    /// length 1.
    #[must_use]
    pub fn cycle_len(&self, k: usize) -> u64 {
        debug_assert!(k < self.len());
        let m = self.modulus() as u64;
        if m == 0 || k == 0 || k as u64 == m {
            return 1;
        }
        let g = gcd(k as u64, m);
        multiplicative_order(self.rows as u64 % (m / g), m / g)
            .expect("rows is invertible mod M/g because rows·cols ≡ 1 (mod M)")
    }

    /// Number of disjoint cycles, by the Cate–Twigg theorem:
    ///
    /// `#cycles = 2 + Σ_{d | M, d > 1} φ(d) / ord_d(rows)`
    ///
    /// where the `2` counts the fixed points `0` and `M`, and elements with
    /// `gcd(k, M) = M/d` split into `φ(d)/ord_d(rows)` cycles of length
    /// `ord_d(rows)` each. Runs in time polynomial in the number of divisors
    /// of `M` — no cycle walking.
    #[must_use]
    pub fn cycle_count(&self) -> u64 {
        let m = self.modulus() as u64;
        if m == 0 {
            return 1; // single element, single trivial cycle
        }
        let mut count = 2; // fixed points 0 and M
        for d in divisors(m) {
            if d == 1 {
                continue;
            }
            let ord = multiplicative_order(self.rows as u64 % d, d)
                .expect("rows coprime to every divisor of M");
            count += totient(d) / ord;
        }
        count
    }

    /// Length of the longest cycle: `ord_M(rows)` (attained by every `k`
    /// coprime to `M`, e.g. `k = 1`). Every other cycle length divides it.
    #[must_use]
    pub fn max_cycle_len(&self) -> u64 {
        let m = self.modulus() as u64;
        if m == 0 {
            return 1;
        }
        multiplicative_order(self.rows as u64 % m, m).expect("rows coprime to M")
    }

    /// True if `k` is the *leader* (minimum offset) of its cycle.
    ///
    /// Walks the cycle and returns early when a smaller offset is met, so the
    /// aggregate cost of testing all `k` equals Σ over cycles of
    /// O(len²) in the worst case but is far cheaper in practice (most
    /// elements bail on the first step).
    #[must_use]
    pub fn is_leader(&self, k: usize) -> bool {
        let mut cur = self.dest(k);
        while cur != k {
            if cur < k {
                return false;
            }
            cur = self.dest(cur);
        }
        true
    }

    /// Iterate the offsets of one cycle starting at `k` (first element `k`,
    /// following `dest`).
    #[must_use]
    pub fn cycle_from(&self, k: usize) -> Vec<usize> {
        let mut out = vec![k];
        let mut cur = self.dest(k);
        while cur != k {
            out.push(cur);
            cur = self.dest(cur);
        }
        out
    }

    /// All cycle leaders with their cycle lengths, ascending by leader.
    ///
    /// Cost: one `is_leader` scan over all offsets. Suitable for matrices up
    /// to tens of millions of elements; analysis-grade, not kernel-grade.
    #[must_use]
    pub fn leaders(&self) -> Vec<(usize, u64)> {
        (0..self.len())
            .filter(|&k| self.is_leader(k))
            .map(|k| (k, self.cycle_len(k)))
            .collect()
    }

    /// Full cycle decomposition as a list of cycles (each starting at its
    /// leader). The paper's 5×3 example yields
    /// `[(0), (1 5 11 13 9 3), (2 10 8 12 4 6), (7), (14)]`.
    #[must_use]
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        self.leaders()
            .into_iter()
            .map(|(k, _)| self.cycle_from(k))
            .collect()
    }

    /// The permutation as an explicit destination table (`table[k] = dest(k)`).
    /// For tests and small-matrix tooling.
    #[must_use]
    pub fn to_table(&self) -> Vec<usize> {
        (0..self.len()).map(|k| self.dest(k)).collect()
    }
}

/// Statistics of a cycle decomposition, used for load-imbalance analysis
/// (§4 of the paper: "the length of the longest cycle is always several
/// times the lengths of other cycles").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStats {
    /// Number of disjoint cycles (including fixed points).
    pub count: u64,
    /// Longest cycle length.
    pub max_len: u64,
    /// Number of fixed points (always 2 for non-degenerate matrices).
    pub fixed_points: u64,
    /// Total number of elements moved (excludes fixed points).
    pub moved: u64,
}

impl TransposePerm {
    /// Closed-form cycle statistics (no walking).
    #[must_use]
    pub fn stats(&self) -> CycleStats {
        let n = self.len() as u64;
        if n <= 1 {
            return CycleStats { count: n.max(1), max_len: 1, fixed_points: n, moved: 0 };
        }
        // Fixed points beyond {0, M} exist iff dest(k) == k for other k,
        // i.e. k(rows−1) ≡ 0 mod M. Count k in (0, M) with M | k(rows−1):
        // they are multiples of M/gcd(M, rows−1), so gcd(M, rows−1) − 1 of
        // them (excluding k = 0 and k = M themselves).
        let m = self.modulus() as u64;
        let extra_fixed = gcd(m, self.rows as u64 - 1) - 1;
        let fixed = 2 + extra_fixed;
        CycleStats {
            count: self.cycle_count(),
            max_len: self.max_cycle_len(),
            fixed_points: fixed,
            moved: n - fixed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force cycle decomposition from the destination table.
    fn brute_cycles(rows: usize, cols: usize) -> Vec<Vec<usize>> {
        let p = TransposePerm::new(rows, cols);
        let n = p.len();
        let mut seen = vec![false; n];
        let mut cycles = Vec::new();
        for k in 0..n {
            if seen[k] {
                continue;
            }
            let mut cyc = vec![k];
            seen[k] = true;
            let mut cur = p.dest(k);
            while cur != k {
                seen[cur] = true;
                cyc.push(cur);
                cur = p.dest(cur);
            }
            cycles.push(cyc);
        }
        cycles
    }

    #[test]
    fn paper_5x3_example() {
        let p = TransposePerm::new(5, 3);
        assert_eq!(p.dest(1), 5);
        assert_eq!(p.dest(5), 11);
        assert_eq!(p.dest(11), 13);
        assert_eq!(p.dest(13), 9);
        assert_eq!(p.dest(9), 3);
        assert_eq!(p.dest(3), 1);
        let cycles = p.cycles();
        assert_eq!(
            cycles,
            vec![
                vec![0],
                vec![1, 5, 11, 13, 9, 3],
                vec![2, 10, 8, 12, 4, 6],
                vec![7],
                vec![14],
            ]
        );
        assert_eq!(p.cycle_count(), 5);
        assert_eq!(p.max_cycle_len(), 6);
    }

    #[test]
    fn dest_is_transpose_mapping() {
        // dest must agree with the definitional mapping (i,j) -> (j,i).
        for &(rows, cols) in &[(5, 3), (3, 5), (4, 4), (7, 2), (1, 9), (9, 1), (6, 8)] {
            let p = TransposePerm::new(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    let k = i * cols + j;
                    let kp = j * rows + i;
                    assert_eq!(p.dest(k), kp, "({rows}x{cols}) element ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn src_inverts_dest() {
        for &(rows, cols) in &[(5, 3), (3, 5), (4, 4), (13, 7), (2, 2), (1, 1)] {
            let p = TransposePerm::new(rows, cols);
            for k in 0..p.len() {
                assert_eq!(p.src(p.dest(k)), k);
                assert_eq!(p.dest(p.src(k)), k);
            }
        }
    }

    #[test]
    fn dest_is_bijection() {
        for &(rows, cols) in &[(5, 3), (6, 4), (7, 7), (2, 9)] {
            let p = TransposePerm::new(rows, cols);
            let mut hit = vec![false; p.len()];
            for k in 0..p.len() {
                let d = p.dest(k);
                assert!(!hit[d], "collision at {d}");
                hit[d] = true;
            }
        }
    }

    #[test]
    fn dest_pow_matches_iteration() {
        let p = TransposePerm::new(7, 5);
        for k in 0..p.len() {
            let mut cur = k;
            for t in 0..40u64 {
                assert_eq!(p.dest_pow(k, t), cur, "k={k} t={t}");
                cur = p.dest(cur);
            }
        }
    }

    #[test]
    fn cycle_count_matches_brute_force() {
        for rows in 1..14 {
            for cols in 1..14 {
                let p = TransposePerm::new(rows, cols);
                let brute = brute_cycles(rows, cols).len() as u64;
                assert_eq!(p.cycle_count(), brute, "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn cycle_len_matches_brute_force() {
        for &(rows, cols) in &[(5, 3), (6, 4), (9, 2), (8, 8), (12, 5)] {
            let p = TransposePerm::new(rows, cols);
            for cyc in brute_cycles(rows, cols) {
                for &k in &cyc {
                    assert_eq!(p.cycle_len(k), cyc.len() as u64, "{rows}x{cols} k={k}");
                }
            }
        }
    }

    #[test]
    fn max_cycle_divides_no_other_exceeds() {
        for rows in 2..12 {
            for cols in 2..12 {
                let p = TransposePerm::new(rows, cols);
                let max = p.max_cycle_len();
                for (_, len) in p.leaders() {
                    assert!(len <= max, "{rows}x{cols}");
                    // Cate–Twigg: every cycle length divides the longest.
                    assert_eq!(max % len, 0, "{rows}x{cols} len={len} max={max}");
                }
            }
        }
    }

    #[test]
    fn square_matrix_cycles_are_swaps() {
        // Square case: cycles are transpositions of symmetric pairs plus
        // diagonal fixed points.
        let p = TransposePerm::new(6, 6);
        for cyc in p.cycles() {
            assert!(cyc.len() <= 2, "square cycles have length ≤ 2: {cyc:?}");
        }
        // #cycles = n(n−1)/2 pairs + n fixed points
        assert_eq!(p.cycle_count() as usize, 6 * 5 / 2 + 6);
    }

    #[test]
    fn stats_consistency() {
        for &(rows, cols) in &[(5, 3), (7, 4), (16, 16), (31, 2)] {
            let p = TransposePerm::new(rows, cols);
            let s = p.stats();
            let cycles = brute_cycles(rows, cols);
            assert_eq!(s.count as usize, cycles.len());
            assert_eq!(s.max_len as usize, cycles.iter().map(Vec::len).max().unwrap());
            let fixed = cycles.iter().filter(|c| c.len() == 1).count() as u64;
            assert_eq!(s.fixed_points, fixed, "{rows}x{cols}");
            assert_eq!(s.moved, (p.len() as u64) - fixed);
        }
    }

    #[test]
    fn leaders_are_cycle_minima() {
        let p = TransposePerm::new(9, 4);
        for (k, _) in p.leaders() {
            let cyc = p.cycle_from(k);
            assert_eq!(*cyc.iter().min().unwrap(), k);
        }
    }

    #[test]
    fn construction_is_checked_at_the_overflow_boundary() {
        // Zero dims are rejected, not wrapped into nonsense.
        assert_eq!(TransposePerm::try_new(0, 5), None);
        assert_eq!(TransposePerm::try_new(5, 0), None);
        // Just past the u32 element-count boundary: construction must
        // succeed on 64-bit and index math must stay exact (a 32-bit wrap
        // would make dest(1) = 65_536·65_537·… nonsense).
        if usize::BITS >= 64 {
            let p = TransposePerm::try_new(65_536, 65_537).expect("fits u64");
            assert_eq!(p.len() as u64, 4_295_032_832);
            // dest(1) = rows, exact — and the last element is a fixed point.
            assert_eq!(p.dest(1), 65_536);
            assert_eq!(p.dest(p.modulus()), p.modulus());
            assert_eq!(p.src(p.dest(12_345_678_901 % p.len())), 12_345_678_901 % p.len());
            // usize::MAX × 2 elements cannot be represented → typed refusal.
            assert_eq!(TransposePerm::try_new(usize::MAX, 2), None);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let p = TransposePerm::new(1, 1);
        assert_eq!(p.dest(0), 0);
        assert_eq!(p.cycle_count(), 1);
        let p = TransposePerm::new(1, 5);
        // 1×N transposition is the identity on linear storage.
        for k in 0..5 {
            assert_eq!(p.dest(k), k);
        }
        let p = TransposePerm::new(5, 1);
        for k in 0..5 {
            assert_eq!(p.dest(k), k);
        }
    }
}
