//! Row-major matrix container and reference transposition utilities.
//!
//! All algorithms in this workspace operate on linearised row-major storage;
//! `Matrix<T>` is a thin owner of that storage with shape metadata plus the
//! out-of-place reference transposition every in-place algorithm is tested
//! against.

use std::fmt;

/// Dense row-major `rows × cols` matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(16) {
                write!(f, "{:?} ", self.data[i * self.cols + j])?;
            }
            writeln!(f, "{}", if self.cols > 16 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl<T: Copy> Matrix<T> {
    /// Create from existing row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate matrix {rows}x{cols}");
        assert_eq!(data.len(), rows * cols, "data length != rows*cols");
        Self { rows, cols, data }
    }

    /// Create by evaluating `f(i, j)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Fill with a constant.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, v: T) -> Self {
        Self::from_vec(rows, cols, vec![v; rows * cols])
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True only for the (disallowed) empty matrix; kept for API hygiene.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(i, j)`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Linearised storage (row-major).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable linearised storage (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Out-of-place reference transposition (allocates a new matrix).
    #[must_use]
    pub fn transposed(&self) -> Matrix<T> {
        let mut out = Vec::with_capacity(self.len());
        for j in 0..self.cols {
            for i in 0..self.rows {
                out.push(self.data[i * self.cols + j]);
            }
        }
        Matrix::from_vec(self.cols, self.rows, out)
    }

    /// Reinterpret the same storage with swapped shape, asserting the caller
    /// has already permuted the data (used after an in-place transposition).
    #[must_use]
    pub fn assume_transposed_shape(self) -> Matrix<T> {
        Matrix { rows: self.cols, cols: self.rows, data: self.data }
    }
}

impl Matrix<u32> {
    /// The canonical test pattern: element at linear offset `k` holds `k`.
    /// Transposing an iota matrix produces a unique, easily-checked result.
    #[must_use]
    pub fn iota(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, (0..(rows * cols) as u32).collect())
    }
}

impl Matrix<f32> {
    /// Deterministic pseudo-random-looking f32 pattern (no RNG dependency in
    /// the library itself; tests that need real randomness use `rand`).
    #[must_use]
    pub fn pattern_f32(rows: usize, cols: usize) -> Self {
        Self::from_fn(rows, cols, |i, j| {
            let k = (i * cols + j) as u32;
            // xorshift-style scramble for non-trivial values
            let mut x = k.wrapping_mul(2_654_435_761).wrapping_add(1);
            x ^= x >> 16;
            (x as f32) / (u32::MAX as f32)
        })
    }
}

/// Check that `candidate`'s storage equals the transposition of `original`'s
/// storage; returns the first mismatching linear offset if any.
#[must_use]
pub fn transposition_mismatch<T: Copy + PartialEq>(
    original: &Matrix<T>,
    candidate: &[T],
) -> Option<usize> {
    let (m, n) = (original.rows(), original.cols());
    assert_eq!(candidate.len(), m * n);
    for j in 0..n {
        for i in 0..m {
            let k = j * m + i;
            if candidate[k] != original.get(i, j) {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as u32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m.get(1, 2), 12);
    }

    #[test]
    fn transposed_reference() {
        let m = Matrix::iota(2, 3);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.as_slice(), &[0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn double_transpose_is_identity() {
        for &(r, c) in &[(1, 1), (5, 3), (3, 5), (7, 7), (1, 9)] {
            let m = Matrix::iota(r, c);
            assert_eq!(m.transposed().transposed(), m);
        }
    }

    #[test]
    fn mismatch_detection() {
        let m = Matrix::iota(5, 3);
        let good = m.transposed();
        assert_eq!(transposition_mismatch(&m, good.as_slice()), None);
        let mut bad = good.into_vec();
        bad[7] = 999;
        assert_eq!(transposition_mismatch(&m, &bad), Some(7));
    }

    #[test]
    fn set_get() {
        let mut m = Matrix::filled(3, 3, 0u32);
        m.set(2, 1, 42);
        assert_eq!(m.get(2, 1), 42);
        assert_eq!(m.as_slice()[7], 42);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn bad_len_panics() {
        let _ = Matrix::from_vec(2, 3, vec![0u32; 5]);
    }

    #[test]
    fn pattern_f32_is_deterministic_and_varied() {
        let a = Matrix::pattern_f32(8, 9);
        let b = Matrix::pattern_f32(8, 9);
        assert_eq!(a, b);
        // not all equal
        let s = a.as_slice();
        assert!(s.iter().any(|&x| (x - s[0]).abs() > 1e-6));
    }
}
