//! Tile-size selection (§7.4 of the paper).
//!
//! The throughput of a staged transposition depends critically on the tile
//! `(m, n)`: stages 1 and 3 move super-elements of size `n` resp. `m` (bigger
//! is better), while stage 2 wants the whole `m × n` tile to fit in on-chip
//! memory so the fast barrier-sync kernel can be used. The paper's pruning
//! heuristic: *pick `m, n` between 50 and 100 with `m·n` below the shared
//! memory capacity* — this lands within 80 % of the exhaustive best.

use crate::numtheory::divisors;
use crate::stages::TileConfig;

/// Divisors of `n` as `usize`, ascending.
#[must_use]
pub fn usize_divisors(n: usize) -> Vec<usize> {
    divisors(n as u64).into_iter().map(|d| d as usize).collect()
}

/// All legal tile configurations for an `M × N` matrix: every `(m, n)` with
/// `m | M` and `n | N`. Includes the trivial tiles (1 and the full
/// dimension).
#[must_use]
pub fn all_tiles(rows: usize, cols: usize) -> Vec<TileConfig> {
    let ms = usize_divisors(rows);
    let ns = usize_divisors(cols);
    let mut out = Vec::with_capacity(ms.len() * ns.len());
    for &m in &ms {
        for &n in &ns {
            out.push(TileConfig::new(m, n));
        }
    }
    out
}

/// The paper's preferred range for each tile dimension.
pub const PREFERRED_RANGE: std::ops::RangeInclusive<usize> = 50..=100;

/// Selection policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct TileHeuristic {
    /// On-chip (shared/local) memory capacity in **words** available to one
    /// work-group for the stage-2 tile (paper: `m·n < 3600` words ≈ the K20
    /// budget after double-buffering overheads).
    pub shared_capacity_words: usize,
    /// Preferred low end for m and n (paper: 50).
    pub preferred_lo: usize,
    /// Preferred high end for m and n (paper: 100).
    pub preferred_hi: usize,
}

impl Default for TileHeuristic {
    fn default() -> Self {
        Self { shared_capacity_words: 3600, preferred_lo: 50, preferred_hi: 100 }
    }
}

impl TileHeuristic {
    /// Is the tile usable at all (stage-2 tile fits in shared memory)?
    #[must_use]
    pub fn feasible(&self, t: TileConfig) -> bool {
        t.tile_len() <= self.shared_capacity_words
    }

    /// Heuristic badness: 0 for a tile with both dimensions inside the
    /// preferred range; otherwise the summed distance of each dimension to
    /// the range, with a mild preference for larger tiles among equals
    /// (stages 1/3 like big super-elements).
    #[must_use]
    pub fn badness(&self, t: TileConfig) -> (usize, std::cmp::Reverse<usize>) {
        let dist = |x: usize| {
            if x < self.preferred_lo {
                self.preferred_lo - x
            } else { x.saturating_sub(self.preferred_hi) }
        };
        (dist(t.m) + dist(t.n), std::cmp::Reverse(t.tile_len()))
    }

    /// Pick the best feasible tile for an `M × N` matrix, or `None` when no
    /// non-trivial factorisation exists (e.g. both dimensions prime and too
    /// large — the paper's acknowledged limitation; callers fall back to the
    /// single-stage plan).
    #[must_use]
    pub fn select(&self, rows: usize, cols: usize) -> Option<TileConfig> {
        let mut best: Option<TileConfig> = None;
        for t in all_tiles(rows, cols) {
            // Trivial tiles degenerate a staged plan into (nearly) the
            // single-stage pass; require genuine tiling in both dims unless
            // the dimension itself is tiny.
            if (t.m == 1 && rows > 1) || (t.n == 1 && cols > 1) {
                continue;
            }
            if t.m == rows && rows > self.shared_capacity_words {
                continue;
            }
            if !self.feasible(t) {
                continue;
            }
            match best {
                None => best = Some(t),
                Some(b) => {
                    if self.badness(t) < self.badness(b) {
                        best = Some(t);
                    }
                }
            }
        }
        best
    }

    /// The pruned candidate set of §7.4: feasible tiles with both dimensions
    /// in the preferred range. Autotuners search this instead of the full
    /// divisor product. May be empty for awkward dimensions.
    #[must_use]
    pub fn pruned_candidates(&self, rows: usize, cols: usize) -> Vec<TileConfig> {
        all_tiles(rows, cols)
            .into_iter()
            .filter(|&t| {
                self.feasible(t)
                    && (self.preferred_lo..=self.preferred_hi).contains(&t.m)
                    && (self.preferred_lo..=self.preferred_hi).contains(&t.n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tiles_counts() {
        // 12 = {1,2,3,4,6,12} (6 divisors), 8 = {1,2,4,8} (4)
        assert_eq!(all_tiles(12, 8).len(), 24);
    }

    #[test]
    fn paper_matrix_preferred_tiles_exist() {
        // 7200×1800: the paper reports best (m,n) = (32,72) for the 3-stage
        // algorithm; both 32|7200... (7200 = 32·225) and 72|1800 (1800 = 72·25).
        let h = TileHeuristic::default();
        let tiles = all_tiles(7200, 1800);
        assert!(tiles.contains(&TileConfig::new(32, 72)));
        let sel = h.select(7200, 1800).expect("tile must exist");
        assert!(h.feasible(sel));
        // The heuristic must land in the preferred band when possible:
        // 7200 and 1800 both have divisors inside [50,100].
        assert!(PREFERRED_RANGE.contains(&sel.m), "m = {}", sel.m);
        assert!(PREFERRED_RANGE.contains(&sel.n), "n = {}", sel.n);
        assert!(sel.tile_len() <= 3600);
    }

    #[test]
    fn pruned_candidates_subset_of_all() {
        let h = TileHeuristic::default();
        let pruned = h.pruned_candidates(7200, 1800);
        assert!(!pruned.is_empty());
        for t in &pruned {
            assert!(h.feasible(*t));
            assert!((50..=100).contains(&t.m));
            assert!((50..=100).contains(&t.n));
            assert_eq!(7200 % t.m, 0);
            assert_eq!(1800 % t.n, 0);
        }
    }

    #[test]
    fn prime_dimensions_have_no_tile() {
        let h = TileHeuristic::default();
        // 7919 and 104729 are prime: only divisors 1 and the dimension, and
        // a full-dimension tile of that size exceeds shared capacity.
        assert_eq!(h.select(7919, 104_729), None);
    }

    #[test]
    fn small_matrix_selects_full_tile() {
        let h = TileHeuristic::default();
        // 6×15 is tiny; any feasible non-trivial tile is fine.
        let t = h.select(6, 15).expect("small matrix always tileable");
        assert!(t.m > 1 || t.n > 1);
        assert!(h.feasible(t));
    }

    #[test]
    fn infeasible_tiles_are_rejected() {
        let h = TileHeuristic { shared_capacity_words: 10, ..Default::default() };
        if let Some(t) = h.select(64, 64) {
            assert!(t.tile_len() <= 10);
        }
    }

    #[test]
    fn badness_prefers_range_then_size() {
        let h = TileHeuristic::default();
        let in_range = TileConfig::new(60, 60);
        let out_range = TileConfig::new(8, 8);
        assert!(h.badness(in_range) < h.badness(out_range));
        let big = TileConfig::new(60, 60);
        let small = TileConfig::new(50, 50);
        assert!(h.badness(big) < h.badness(small), "larger tile preferred in-range");
    }
}
