//! Permutation machinery: the transposition permutation's cycle structure
//! and factorial-number naming of staged dimension swaps.

pub mod cycle;
pub mod factorial;
