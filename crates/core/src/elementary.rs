//! Elementary tiled transpositions — the building blocks of staged full
//! transposition (§4 of the paper).
//!
//! Every elementary transposition the paper uses (`010!`, `100!`, `0100!`,
//! `0010!`, `1000!`) is an instance of one unified operation: view the array
//! as `instances × rows × cols × super_size` and, **independently within each
//! instance**, permute the `rows × cols` grid of contiguous super-elements to
//! `cols × rows` order. Concretely:
//!
//! | paper op | instances | rows | cols | super | view transform |
//! |----------|-----------|------|------|-------|----------------|
//! | `010!`   | A         | m    | n    | 1     | `A×m×n → A×n×m` |
//! | `100!`   | 1         | N    | M′   | m     | `N×M′×m → M′×N×m` |
//! | `0100!`  | M′        | m    | N′   | n     | `M′×m×N′×n → M′×N′×m×n` |
//! | `0010!`  | M′·N′     | m    | n    | 1     | `…×m×n → …×n×m` |
//! | `1000!`  | 1         | M′   | N′   | m·n   | `M′×N′×(mn) → N′×M′×(mn)` |
//!
//! The data movement inside one instance is cycle-following over the
//! permutation `k ↦ k·rows mod (rows·cols − 1)` acting on super-element
//! indices ([`TransposePerm`]). This module provides a sequential in-place
//! engine over any bijective index map, an out-of-place reference, and the
//! instanced wrapper; [`parallel`](crate::elementary::parallel) adds
//! multi-threaded execution.

use crate::perm::cycle::TransposePerm;

pub mod parallel;

/// A bijective map on super-element indices `0..len`, the abstract interface
/// of the in-place shifting engine.
///
/// Implementors must guarantee `dest` is a bijection and `src` its inverse.
pub trait IndexPerm: Sync {
    /// Number of super-elements the permutation acts on.
    fn len(&self) -> usize;
    /// Where the super-element currently at `k` must move to.
    fn dest(&self, k: usize) -> usize;
    /// Which super-element moves into position `k` (inverse of `dest`).
    fn src(&self, k: usize) -> usize;

    /// True if the map has no elements (default: `len() == 0`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl IndexPerm for TransposePerm {
    fn len(&self) -> usize {
        TransposePerm::len(self)
    }
    fn dest(&self, k: usize) -> usize {
        TransposePerm::dest(self, k)
    }
    fn src(&self, k: usize) -> usize {
        TransposePerm::src(self, k)
    }
}

/// Shift super-elements of `super_size` contiguous `T`s within `data`
/// according to `perm`, in place, following cycles sequentially.
///
/// Berman-style bookkeeping: one visited bit per super-element (O(len)
/// time) plus a single temporary super-element. For the zero-workspace
/// flavour (leaders recomputed by walking — Windley 1959, and the reason
/// sequential in-place transposition like `mkl_simatcopy` is so slow) see
/// [`cycle_shift_seq_minimal`].
///
/// # Panics
/// Panics if `data.len() != perm.len() * super_size`.
pub fn cycle_shift_seq<T: Copy>(data: &mut [T], perm: &impl IndexPerm, super_size: usize) {
    let mut visited = vec![false; perm.len()];
    cycle_shift_seq_with(data, perm, super_size, &mut visited);
}

/// [`cycle_shift_seq`] with a caller-provided visited bitmap, so repeated
/// shifts over same-shaped chunks reuse one allocation. The bitmap is
/// cleared on entry.
///
/// # Panics
/// As [`cycle_shift_seq`]; additionally if `visited.len() != perm.len()`.
pub fn cycle_shift_seq_with<T: Copy>(
    data: &mut [T],
    perm: &impl IndexPerm,
    super_size: usize,
    visited: &mut Vec<bool>,
) {
    assert!(super_size > 0, "super_size must be positive");
    assert_eq!(data.len(), perm.len() * super_size, "data/permutation size mismatch");
    assert_eq!(visited.len(), perm.len(), "visited bitmap size mismatch");
    visited.fill(false);
    let n = perm.len();
    let mut tmp: Vec<T> = Vec::with_capacity(super_size);
    for leader in 0..n {
        if visited[leader] {
            continue;
        }
        visited[leader] = true;
        if perm.dest(leader) == leader {
            continue; // fixed point
        }
        shift_one_cycle(data, perm, super_size, leader, &mut tmp, Some(visited));
    }
}

/// [`cycle_shift_seq`] with zero workspace beyond one super-element:
/// leaders are recomputed by walking each cycle (worst-case superlinear —
/// this is why purely sequential in-place transposition is slow).
///
/// # Panics
/// Panics if `data.len() != perm.len() * super_size`.
pub fn cycle_shift_seq_minimal<T: Copy>(data: &mut [T], perm: &impl IndexPerm, super_size: usize) {
    assert!(super_size > 0, "super_size must be positive");
    assert_eq!(data.len(), perm.len() * super_size, "data/permutation size mismatch");
    let n = perm.len();
    let mut tmp: Vec<T> = Vec::with_capacity(super_size);
    for leader in 0..n {
        if perm.dest(leader) == leader {
            continue; // fixed point
        }
        // Leader test: walk the cycle, bail if any member is smaller.
        let mut cur = perm.dest(leader);
        let mut is_leader = true;
        while cur != leader {
            if cur < leader {
                is_leader = false;
                break;
            }
            cur = perm.dest(cur);
        }
        if !is_leader {
            continue;
        }
        shift_one_cycle(data, perm, super_size, leader, &mut tmp, None);
    }
}

/// Shift the cycle through `leader`: `data'[x] = data[src(x)]`, walked
/// backwards from the leader so a single temp super-element suffices.
/// Marks members in `visited` when provided.
fn shift_one_cycle<T: Copy>(
    data: &mut [T],
    perm: &impl IndexPerm,
    super_size: usize,
    leader: usize,
    tmp: &mut Vec<T>,
    mut visited: Option<&mut Vec<bool>>,
) {
    if super_size == 1 {
        // Scalar fast path: range-based copies cost more than the move.
        let saved = data[leader];
        let mut cur = leader;
        let mut prev = perm.src(cur);
        while prev != leader {
            if let Some(v) = visited.as_deref_mut() {
                v[prev] = true;
            }
            data[cur] = data[prev];
            cur = prev;
            prev = perm.src(cur);
        }
        data[cur] = saved;
        return;
    }
    tmp.clear();
    tmp.extend_from_slice(&data[leader * super_size..(leader + 1) * super_size]);
    let mut cur = leader;
    let mut prev = perm.src(cur);
    while prev != leader {
        if let Some(v) = visited.as_deref_mut() {
            v[prev] = true;
        }
        data.copy_within(prev * super_size..(prev + 1) * super_size, cur * super_size);
        cur = prev;
        prev = perm.src(cur);
    }
    data[cur * super_size..(cur + 1) * super_size].copy_from_slice(tmp);
}

/// Out-of-place reference for the same operation: `dst[dest(k)] = src_data[k]`.
///
/// # Panics
/// Panics on size mismatches.
pub fn cycle_shift_oop<T: Copy>(
    src_data: &[T],
    dst: &mut [T],
    perm: &impl IndexPerm,
    super_size: usize,
) {
    assert!(super_size > 0);
    assert_eq!(src_data.len(), perm.len() * super_size);
    assert_eq!(dst.len(), src_data.len());
    for k in 0..perm.len() {
        let d = perm.dest(k);
        dst[d * super_size..(d + 1) * super_size]
            .copy_from_slice(&src_data[k * super_size..(k + 1) * super_size]);
    }
}

/// The unified elementary tiled transposition: `instances` independent
/// in-place transpositions of `rows × cols` grids of super-elements of
/// `super_size` scalars each, over contiguous chunks of the array.
///
/// ```
/// use ipt_core::InstancedTranspose;
/// // 100!: view 4×3 super-elements of 2 words, transpose in place.
/// let op = InstancedTranspose::new(1, 4, 3, 2);
/// let mut data: Vec<u32> = (0..24).collect();
/// op.apply_seq(&mut data);
/// assert_eq!(&data[0..6], &[0, 1, 6, 7, 12, 13]); // first output row
/// op.inverse().apply_seq(&mut data);
/// assert_eq!(data, (0..24).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstancedTranspose {
    /// Number of independent contiguous instances.
    pub instances: usize,
    /// Rows of each instance's super-element grid (source orientation).
    pub rows: usize,
    /// Columns of each instance's super-element grid (source orientation).
    pub cols: usize,
    /// Scalars per super-element (contiguous, moved as a unit).
    pub super_size: usize,
}

impl InstancedTranspose {
    /// Construct, validating all dimensions are positive.
    #[must_use]
    pub fn new(instances: usize, rows: usize, cols: usize, super_size: usize) -> Self {
        assert!(
            instances > 0 && rows > 0 && cols > 0 && super_size > 0,
            "degenerate InstancedTranspose {instances}x{rows}x{cols}x{super_size}"
        );
        Self { instances, rows, cols, super_size }
    }

    /// Scalars per instance chunk.
    #[inline]
    #[must_use]
    pub fn instance_len(&self) -> usize {
        self.rows * self.cols * self.super_size
    }

    /// Total scalars the operation acts on.
    #[inline]
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.instances * self.instance_len()
    }

    /// The per-instance permutation on super-element indices.
    #[inline]
    #[must_use]
    pub fn perm(&self) -> TransposePerm {
        TransposePerm::new(self.rows, self.cols)
    }

    /// Global scalar-index map of the whole operation (for verification and
    /// stage-plan composition): where the scalar at offset `k` moves to.
    #[must_use]
    pub fn dest_scalar(&self, k: usize) -> usize {
        debug_assert!(k < self.total_len());
        let il = self.instance_len();
        let (inst, within) = (k / il, k % il);
        let (se, s) = (within / self.super_size, within % self.super_size);
        let d = self.perm().dest(se);
        inst * il + d * self.super_size + s
    }

    /// Execute in place, sequentially.
    ///
    /// # Panics
    /// Panics if `data.len() != self.total_len()`.
    pub fn apply_seq<T: Copy>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.total_len(), "data length mismatch");
        let perm = self.perm();
        let il = self.instance_len();
        let mut visited = vec![false; IndexPerm::len(&perm)];
        for chunk in data.chunks_exact_mut(il) {
            cycle_shift_seq_with(chunk, &perm, self.super_size, &mut visited);
        }
    }

    /// Execute out of place into `dst` (reference semantics).
    pub fn apply_oop<T: Copy>(&self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), self.total_len());
        assert_eq!(dst.len(), self.total_len());
        let perm = self.perm();
        let il = self.instance_len();
        for (s, d) in src.chunks_exact(il).zip(dst.chunks_exact_mut(il)) {
            cycle_shift_oop(s, d, &perm, self.super_size);
        }
    }

    /// The inverse operation (undoes this transposition).
    #[must_use]
    pub fn inverse(&self) -> Self {
        Self { instances: self.instances, rows: self.cols, cols: self.rows, super_size: self.super_size }
    }
}

/// The fused stage-2+3 operation of the 4-stage algorithm
/// (Karlsson/Gustavson fusion): in a `rows_outer × cols_outer` grid of
/// `rows_inner × cols_inner` tiles, simultaneously transpose the grid *and*
/// each tile: `(a, b, c, d) ↦ (b, a, d, c)` on the 4-D view.
///
/// Unlike [`InstancedTranspose`] the moved unit is a scalar, and the index
/// map is not a plain 2-D transposition, so it implements [`IndexPerm`]
/// directly and is executed by the generic engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedTileTranspose {
    /// Outer grid rows (M′).
    pub rows_outer: usize,
    /// Outer grid cols (N′).
    pub cols_outer: usize,
    /// Tile rows (m).
    pub rows_inner: usize,
    /// Tile cols (n).
    pub cols_inner: usize,
}

impl FusedTileTranspose {
    /// Construct, validating dimensions.
    #[must_use]
    pub fn new(rows_outer: usize, cols_outer: usize, rows_inner: usize, cols_inner: usize) -> Self {
        assert!(rows_outer > 0 && cols_outer > 0 && rows_inner > 0 && cols_inner > 0);
        Self { rows_outer, cols_outer, rows_inner, cols_inner }
    }

    #[inline]
    fn decompose(&self, k: usize) -> (usize, usize, usize, usize) {
        let tile = self.rows_inner * self.cols_inner;
        let (outer, within) = (k / tile, k % tile);
        let (a, b) = (outer / self.cols_outer, outer % self.cols_outer);
        let (c, d) = (within / self.cols_inner, within % self.cols_inner);
        (a, b, c, d)
    }

    /// Execute in place, sequentially.
    pub fn apply_seq<T: Copy>(&self, data: &mut [T]) {
        cycle_shift_seq(data, self, 1);
    }
}

impl IndexPerm for FusedTileTranspose {
    fn len(&self) -> usize {
        self.rows_outer * self.cols_outer * self.rows_inner * self.cols_inner
    }

    fn dest(&self, k: usize) -> usize {
        let (a, b, c, d) = self.decompose(k);
        // (a,b,c,d) → (b,a,d,c) over shape (cols_outer, rows_outer,
        // cols_inner, rows_inner) in the destination.
        ((b * self.rows_outer + a) * self.cols_inner + d) * self.rows_inner + c
    }

    fn src(&self, k: usize) -> usize {
        // Destination shape is (cols_outer, rows_outer, cols_inner,
        // rows_inner); invert the map.
        let tile = self.rows_inner * self.cols_inner;
        let (outer, within) = (k / tile, k % tile);
        let (b, a) = (outer / self.rows_outer, outer % self.rows_outer);
        let (d, c) = (within / self.rows_inner, within % self.rows_inner);
        ((a * self.cols_outer + b) * self.rows_inner + c) * self.cols_inner + d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn cycle_shift_seq_matches_oop() {
        for &(rows, cols, s) in &[(5, 3, 1), (3, 5, 2), (4, 4, 3), (7, 2, 4), (1, 6, 2), (6, 1, 5)] {
            let perm = TransposePerm::new(rows, cols);
            let data: Vec<u32> = (0..(rows * cols * s) as u32).collect();
            let mut inplace = data.clone();
            cycle_shift_seq(&mut inplace, &perm, s);
            let mut oop = vec![0u32; data.len()];
            cycle_shift_oop(&data, &mut oop, &perm, s);
            assert_eq!(inplace, oop, "{rows}x{cols} super={s}");
        }
    }

    #[test]
    fn instanced_is_transpose_per_instance() {
        let op = InstancedTranspose::new(3, 4, 5, 2);
        let mut data: Vec<u32> = (0..op.total_len() as u32).collect();
        let orig = data.clone();
        op.apply_seq(&mut data);
        // Verify against the 4-D definition: out[inst][c][r][s] = in[inst][r][c][s]
        let il = op.instance_len();
        for inst in 0..3 {
            for r in 0..4 {
                for c in 0..5 {
                    for s in 0..2 {
                        let src = inst * il + (r * 5 + c) * 2 + s;
                        let dst = inst * il + (c * 4 + r) * 2 + s;
                        assert_eq!(data[dst], orig[src], "inst={inst} r={r} c={c} s={s}");
                    }
                }
            }
        }
    }

    #[test]
    fn instanced_010_is_matrix_transpose() {
        // instances=1, super=1 must equal plain matrix transposition.
        let m = Matrix::iota(7, 4);
        let op = InstancedTranspose::new(1, 7, 4, 1);
        let mut data = m.as_slice().to_vec();
        op.apply_seq(&mut data);
        assert_eq!(data, m.transposed().into_vec());
    }

    #[test]
    fn dest_scalar_matches_oop() {
        let op = InstancedTranspose::new(2, 3, 4, 2);
        let data: Vec<u32> = (0..op.total_len() as u32).collect();
        let mut oop = vec![0u32; data.len()];
        op.apply_oop(&data, &mut oop);
        for k in 0..data.len() {
            assert_eq!(oop[op.dest_scalar(k)], data[k]);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let op = InstancedTranspose::new(2, 5, 3, 2);
        let mut data: Vec<u32> = (0..op.total_len() as u32).collect();
        let orig = data.clone();
        op.apply_seq(&mut data);
        assert_ne!(data, orig);
        op.inverse().apply_seq(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn fused_matches_two_step() {
        // Fusion must equal 0010! followed by 1000!.
        let (mp, np, m, n) = (3, 4, 2, 5);
        let fused = FusedTileTranspose::new(mp, np, m, n);
        let mut a: Vec<u32> = (0..fused.len() as u32).collect();
        let mut b = a.clone();
        fused.apply_seq(&mut a);
        InstancedTranspose::new(mp * np, m, n, 1).apply_seq(&mut b); // 0010!
        InstancedTranspose::new(1, mp, np, m * n).apply_seq(&mut b); // 1000!
        assert_eq!(a, b);
    }

    #[test]
    fn fused_src_inverts_dest() {
        let fused = FusedTileTranspose::new(3, 4, 2, 5);
        for k in 0..fused.len() {
            assert_eq!(fused.src(fused.dest(k)), k);
            assert_eq!(fused.dest(fused.src(k)), k);
        }
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn wrong_length_panics() {
        let op = InstancedTranspose::new(1, 3, 3, 1);
        let mut data = vec![0u32; 8];
        op.apply_seq(&mut data);
    }
}
