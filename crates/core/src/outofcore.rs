//! Out-of-core chunk planning for matrices larger than device memory.
//!
//! The paper's schemes (§4-§6) assume the whole `rows × cols` matrix is
//! resident in device global memory. The streaming executor in `ipt-gpu`
//! lifts that assumption by cutting the matrix into horizontal **row
//! bands** — each band is an ASTA panel `chunk_rows × cols` that *does* fit
//! on the device — and pipelining H2D → transpose kernels → D2H across the
//! two copy engines. This module is the pure planning half: given a shape
//! and a device-memory budget it decides the band height and chunk count,
//! with every byte computation in `u128` via [`crate::check`] so that
//! out-of-core scales (where `rows·cols·elem` brushes `u64::MAX`) produce
//! typed errors instead of wrapped sizes.
//!
//! Band orientation: a row band of the row-major input is contiguous in
//! host memory (one `memcpy`-shaped H2D per chunk), and its transpose is a
//! `cols × chunk_rows` panel that scatters into the output at a fixed
//! column offset — chunks never overlap in the destination, which is what
//! makes chunk-granular commit/rollback sound.

use crate::check::{self, SizeError};

/// Why a chunk plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// One of `rows`, `cols`, `elem_words` is zero.
    ZeroDim,
    /// The device-memory budget is zero words.
    ZeroBudget,
    /// A single row (`cols * elem_words` words, times `buffers`) does not
    /// fit in the budget — streaming by row bands is impossible.
    RowTooLarge {
        /// Words one buffered row requires.
        need: u64,
        /// Words the budget provides.
        have: u64,
    },
    /// Byte/word arithmetic overflowed even `u64`.
    Size(SizeError),
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroDim => write!(f, "matrix dimensions must be non-zero"),
            Self::ZeroBudget => write!(f, "device memory budget must be non-zero"),
            Self::RowTooLarge { need, have } => write!(
                f,
                "one buffered row needs {need} words but the budget is {have}"
            ),
            Self::Size(e) => write!(f, "size arithmetic overflow: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SizeError> for PlanError {
    fn from(e: SizeError) -> Self {
        Self::Size(e)
    }
}

/// A fully-resolved streaming plan: the matrix cut into `num_chunks` row
/// bands of at most `chunk_rows` rows each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Total matrix rows.
    pub rows: usize,
    /// Total matrix columns.
    pub cols: usize,
    /// Words (u32) per element.
    pub elem_words: usize,
    /// Device-memory budget in words the plan was built against.
    pub budget_words: u64,
    /// Concurrently-resident chunk buffers the budget is split across
    /// (2 for double buffering).
    pub buffers: usize,
    /// Rows per band (last band may be shorter).
    pub chunk_rows: usize,
    /// Number of bands.
    pub num_chunks: usize,
}

impl ChunkPlan {
    /// Half-open row range `(row0, nrows)` of chunk `i`.
    ///
    /// # Panics
    /// If `i >= num_chunks`.
    #[must_use]
    pub fn chunk_range(&self, i: usize) -> (usize, usize) {
        assert!(i < self.num_chunks, "chunk {i} out of {}", self.num_chunks);
        let row0 = i * self.chunk_rows;
        let nrows = self.chunk_rows.min(self.rows - row0);
        (row0, nrows)
    }

    /// Words in chunk `i` (`nrows * cols * elem_words`).
    #[must_use]
    pub fn chunk_words(&self, i: usize) -> usize {
        let (_, nrows) = self.chunk_range(i);
        nrows * self.cols * self.elem_words
    }

    /// Total matrix words; exact because the plan constructor validated the
    /// product.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        check::checked_words(self.rows, self.cols)
            .and_then(|w| w.checked_mul(self.elem_words as u64))
            .expect("validated at plan time")
    }

    /// True when the matrix genuinely exceeds the budget (more than one
    /// chunk); a single-chunk plan means the resident path would have
    /// sufficed.
    #[must_use]
    pub fn is_out_of_core(&self) -> bool {
        self.num_chunks > 1
    }
}

/// Build a streaming plan: split the device budget across `buffers`
/// concurrently-resident chunk buffers and make each band as tall as fits.
///
/// `budget_words` is the usable device global memory in u32 words; the
/// executor double-buffers, so `buffers` is normally 2 (ping-pong) — pass 1
/// for the serialized single-engine rung of the degradation ladder.
pub fn plan_chunks(
    rows: usize,
    cols: usize,
    elem_words: usize,
    budget_words: u64,
    buffers: usize,
) -> Result<ChunkPlan, PlanError> {
    if rows == 0 || cols == 0 || elem_words == 0 || buffers == 0 {
        return Err(PlanError::ZeroDim);
    }
    if budget_words == 0 {
        return Err(PlanError::ZeroBudget);
    }
    // Validate the full-matrix word count up front: everything downstream
    // (checksums, output allocation) relies on it being representable.
    let row_words_u128 = (cols as u128) * (elem_words as u128);
    let total_u128 = (rows as u128) * row_words_u128;
    if u64::try_from(total_u128).is_err() {
        return Err(SizeError::BytesOverflow { rows, cols, elem_bytes: elem_words * 4 }.into());
    }
    let row_words = row_words_u128 as u64; // ≤ total, so fits
    let per_buffer = budget_words / (buffers as u64);
    let chunk_rows_u64 = per_buffer / row_words;
    if chunk_rows_u64 == 0 {
        return Err(PlanError::RowTooLarge {
            need: row_words.saturating_mul(buffers as u64),
            have: budget_words,
        });
    }
    let chunk_rows = usize::try_from(chunk_rows_u64.min(rows as u64))
        .expect("bounded by rows which is a usize");
    let num_chunks = usize::try_from(check::chunk_count(rows, chunk_rows)?)
        .expect("at most rows chunks");
    Ok(ChunkPlan {
        rows,
        cols,
        elem_words,
        budget_words,
        buffers,
        chunk_rows,
        num_chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_all_rows_exactly_once() {
        // 100 rows, budget for 2 buffers of 24 rows each -> chunk_rows 24,
        // 5 chunks with a short tail of 4.
        let p = plan_chunks(100, 8, 1, 8 * 24 * 2, 2).unwrap();
        assert_eq!(p.chunk_rows, 24);
        assert_eq!(p.num_chunks, 5);
        let mut covered = 0usize;
        for i in 0..p.num_chunks {
            let (r0, n) = p.chunk_range(i);
            assert_eq!(r0, covered);
            covered += n;
            assert_eq!(p.chunk_words(i), n * 8);
        }
        assert_eq!(covered, 100);
        assert!(p.is_out_of_core());
    }

    #[test]
    fn single_chunk_when_matrix_fits() {
        let p = plan_chunks(16, 8, 1, 1 << 20, 2).unwrap();
        assert_eq!(p.num_chunks, 1);
        assert_eq!(p.chunk_rows, 16); // clamped to rows
        assert!(!p.is_out_of_core());
    }

    #[test]
    fn zero_inputs_are_typed_errors() {
        assert_eq!(plan_chunks(0, 8, 1, 64, 2), Err(PlanError::ZeroDim));
        assert_eq!(plan_chunks(8, 0, 1, 64, 2), Err(PlanError::ZeroDim));
        assert_eq!(plan_chunks(8, 8, 0, 64, 2), Err(PlanError::ZeroDim));
        assert_eq!(plan_chunks(8, 8, 1, 64, 0), Err(PlanError::ZeroDim));
        assert_eq!(plan_chunks(8, 8, 1, 0, 2), Err(PlanError::ZeroBudget));
    }

    #[test]
    fn row_too_large_is_reported() {
        // One row = 64 words; double buffered needs 128, budget 100.
        let e = plan_chunks(10, 64, 1, 100, 2).unwrap_err();
        assert_eq!(e, PlanError::RowTooLarge { need: 128, have: 100 });
        assert!(format!("{e}").contains("128"));
    }

    #[test]
    fn overflow_shapes_are_typed_errors() {
        if usize::BITS < 64 {
            return;
        }
        // rows·cols·elem_words = 2^64 words: must refuse, not wrap.
        let e = plan_chunks(1 << 31, 1 << 30, 8, u64::MAX, 2).unwrap_err();
        assert!(matches!(e, PlanError::Size(SizeError::BytesOverflow { .. })));
        // The 65536×65537 wrap shape per chunk from check.rs stays exact.
        let p = plan_chunks(65_536, 65_537, 1, 2 * 65_537 * 1024, 2).unwrap();
        assert_eq!(p.chunk_rows, 1024);
        assert_eq!(p.num_chunks, 64);
        assert_eq!(p.total_words(), 4_295_032_832);
    }

    #[test]
    fn single_buffer_plan_gets_taller_chunks() {
        let double = plan_chunks(96, 8, 1, 8 * 32, 2).unwrap();
        let single = plan_chunks(96, 8, 1, 8 * 32, 1).unwrap();
        assert_eq!(double.chunk_rows, 16);
        assert_eq!(single.chunk_rows, 32);
        assert!(single.num_chunks < double.num_chunks);
    }
}
