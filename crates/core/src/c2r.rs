//! The C2R/R2C decomposition of Catanzaro, Keller & Garland (PPoPP 2014)
//! — the general-shape rival to the staged algorithm, and the fix for the
//! paper's own §7.4 limitation. Where [`crate::coprime`] covers only
//! `gcd(M, N) = 1`, this decomposition is **total**: any row-major `M × N`
//! matrix transposes in place as three independent line permutations
//!
//! 1. **column rotate** — within column `q`, rotate down by `⌊q/b⌋`
//!    (identity when `c = 1`, so the pass is skipped there),
//! 2. **row shuffle** — within each row, a modular gather permutation,
//! 3. **column shuffle** — within each column, a modular gather
//!    permutation,
//!
//! where `c = gcd(M, N)`, `a = M/c`, `b = N/c`. Every line permutes
//! independently of every other line of its pass, so there are no
//! per-element claim flags, no atomics, and perfect load balance; the
//! scratch requirement is one line (`max(M, N)` elements) per worker —
//! never a second matrix.
//!
//! ## Derivation (gather forms)
//!
//! Element `(r, q)` of the `M × N` source must end at linear offset
//! `t = q·M + r` of the `N × M` result. Phase 1 scatters
//! `(r, q) → ((r + ⌊q/b⌋) mod M, q)`. Writing `q = x·b + y` with
//! `x ∈ [0, c)`, `y ∈ [0, b)`, the phase-2 gather for output `(i, j)`
//! solves `(q·M + r) mod N = j` with `r = (i − x) mod M`: reducing mod
//! `c` gives `x = (i − j) mod c`, then `r` follows, and
//! `y = (((j − r) mod N)/c · a⁻¹) mod b` (the difference is always
//! divisible by `c`). Phase 3 gathers output row `J` of column `j` from
//! row `(t mod M + ⌊(t div M)/b⌋) mod M` with `t = J·N + j`. For
//! `c = 1` these collapse exactly to the two coprime-phase formulas of
//! [`crate::coprime`] — the coprime module is the `c = 1` slice of this
//! one.
//!
//! ```
//! use ipt_core::{Matrix, transpose_matrix_c2r};
//! let a = Matrix::iota(7919, 104); // prime rows — untileable
//! let t = transpose_matrix_c2r(a.clone());
//! assert_eq!(t, a.transposed());
//! ```

use crate::matrix::Matrix;
use crate::numtheory::{gcd, mod_inverse};
use rayon::prelude::*;

/// The shape-derived constants all three passes share. Cheap to build
/// (one gcd + one extended Euclid) and `Copy`, so kernels embed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct C2rGeometry {
    /// Matrix rows (M).
    pub m: usize,
    /// Matrix cols (N).
    pub n: usize,
    /// `gcd(M, N)`.
    pub c: usize,
    /// `M / c`.
    pub a: usize,
    /// `N / c`.
    pub b: usize,
    /// `a⁻¹ mod b` (`0` when `b = 1`).
    pub a_inv: usize,
}

impl C2rGeometry {
    /// Derive the decomposition constants for an `M × N` matrix. Total for
    /// every `M, N ≥ 1`; the modular inverse always exists because
    /// `gcd(a, b) = 1` by construction.
    ///
    /// # Panics
    /// Panics on a zero dimension (the planner maps those to identity).
    #[must_use]
    pub fn new(m_rows: usize, n_cols: usize) -> Self {
        assert!(m_rows > 0 && n_cols > 0, "degenerate shape {m_rows}x{n_cols}");
        let c = gcd(m_rows as u64, n_cols as u64) as usize;
        let (a, b) = (m_rows / c, n_cols / c);
        let a_inv = mod_inverse(a as u64 % b.max(1) as u64, b as u64)
            .expect("a and b are coprime by construction") as usize;
        Self { m: m_rows, n: n_cols, c, a, b, a_inv }
    }

    /// Does phase 1 do anything? The rotation amount `⌊q/b⌋` is zero for
    /// every column exactly when `c = 1` (then `b = N > q`).
    #[must_use]
    pub fn needs_rotate(&self) -> bool {
        self.c > 1 && self.m > 1
    }

    /// Phase-1 gather: the element that ends at row `i` of column `q` comes
    /// from row `(i − ⌊q/b⌋) mod M` (the scatter is a downward rotate by
    /// `⌊q/b⌋`).
    #[inline]
    #[must_use]
    pub fn rotate_src_row(&self, i: usize, q: usize) -> usize {
        debug_assert!(i < self.m && q < self.n);
        let shift = (q / self.b) % self.m;
        (i + self.m - shift) % self.m
    }

    /// Phase-2 gather: the element that ends at column `j` of row `i` came
    /// (post-rotate) from column `x·b + y` — see the module derivation.
    /// All intermediates are `u128`-checked: the widest product,
    /// `z · a_inv`, is bounded by `b² ≤ N²`, which can overflow narrower
    /// arithmetic on pathological shapes.
    #[inline]
    #[must_use]
    pub fn row_shuffle_src_col(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.m && j < self.n);
        let (m, n, c, b) = (self.m, self.n, self.c, self.b);
        let x = (i % c + c - j % c) % c;
        let r = (i + m - x) % m;
        let diff = (j + n - r % n) % n;
        debug_assert_eq!(diff % c, 0, "j ≡ r (mod c) by construction");
        let z = diff / c;
        let y = ((z as u128 * self.a_inv as u128) % b.max(1) as u128) as usize;
        x * b + y
    }

    /// Phase-3 gather: the element that ends at row `J` of column `j`
    /// (linear offset `t = J·N + j`) sits at row
    /// `(t mod M + ⌊(t div M)/b⌋) mod M` of the same column.
    #[inline]
    #[must_use]
    pub fn col_shuffle_src_row(&self, j_out: usize, col: usize) -> usize {
        debug_assert!(j_out < self.m && col < self.n);
        let t = j_out as u128 * self.n as u128 + col as u128;
        let r = (t % self.m as u128) as usize;
        let q = (t / self.m as u128) as usize;
        (r + (q / self.b) % self.m) % self.m
    }
}

/// Stage column `col` into `tmp`, then overwrite it through the gather
/// `src`: `col[k] = tmp[src(k)]`.
fn apply_col_pass<T: Copy>(
    data: &mut [T],
    geom: &C2rGeometry,
    col: usize,
    tmp: &mut Vec<T>,
    src: impl Fn(usize) -> usize,
) {
    let (m, n) = (geom.m, geom.n);
    tmp.clear();
    tmp.extend((0..m).map(|r| data[r * n + col]));
    for k in 0..m {
        data[k * n + col] = tmp[src(k)];
    }
}

/// Stage row `i` into `tmp`, then overwrite it through the phase-2 gather.
fn apply_row_pass<T: Copy>(row: &mut [T], geom: &C2rGeometry, i: usize, tmp: &mut Vec<T>) {
    tmp.clear();
    tmp.extend_from_slice(row);
    for (j, slot) in row.iter_mut().enumerate() {
        *slot = tmp[geom.row_shuffle_src_col(i, j)];
    }
}

/// Sequential in-place C2R transposition of a row-major `M × N` buffer.
/// Total: any `M, N ≥ 1`. Scratch: one line (`max(M, N)` elements).
///
/// # Panics
/// Panics if `data.len() != m_rows·n_cols` or a dimension is zero.
pub fn transpose_c2r_seq<T: Copy>(data: &mut [T], m_rows: usize, n_cols: usize) {
    assert_eq!(data.len(), m_rows * n_cols);
    let geom = C2rGeometry::new(m_rows, n_cols);
    let mut tmp = Vec::with_capacity(m_rows.max(n_cols));
    if geom.needs_rotate() {
        for q in 0..n_cols {
            apply_col_pass(data, &geom, q, &mut tmp, |i| geom.rotate_src_row(i, q));
        }
    }
    for (i, row) in data.chunks_exact_mut(n_cols).enumerate() {
        apply_row_pass(row, &geom, i, &mut tmp);
    }
    for col in 0..n_cols {
        apply_col_pass(data, &geom, col, &mut tmp, |j_out| geom.col_shuffle_src_row(j_out, col));
    }
}

/// Rayon-parallel C2R: columns in parallel, rows in parallel, columns in
/// parallel — each worker keeps one line of scratch.
///
/// # Panics
/// As [`transpose_c2r_seq`].
pub fn transpose_c2r_par<T: Copy + Send + Sync>(data: &mut [T], m_rows: usize, n_cols: usize) {
    assert_eq!(data.len(), m_rows * n_cols);
    let geom = C2rGeometry::new(m_rows, n_cols);
    // Columns: disjoint stride-N index sets; the same raw-pointer pattern
    // as the cycle engine and `coprime::transpose_coprime_par`.
    struct Ptr<T>(*mut T);
    unsafe impl<T: Send> Sync for Ptr<T> {}
    impl<T> Ptr<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let len = data.len();
    let col_pass = |ptr: &Ptr<T>, src_for: &(dyn Fn(usize, usize) -> usize + Sync)| {
        (0..n_cols).into_par_iter().for_each_init(
            || Vec::with_capacity(m_rows),
            |tmp, col| {
                // SAFETY: column `col` touches only offsets ≡ col (mod N);
                // columns are pairwise disjoint.
                let data = unsafe { std::slice::from_raw_parts_mut(ptr.get(), len) };
                apply_col_pass(data, &geom, col, tmp, |k| src_for(k, col));
            },
        );
    };
    if geom.needs_rotate() {
        let ptr = Ptr(data.as_mut_ptr());
        col_pass(&ptr, &|i, q| geom.rotate_src_row(i, q));
    }
    data.par_chunks_exact_mut(n_cols).enumerate().for_each_init(
        || Vec::with_capacity(n_cols),
        |tmp, (i, row)| apply_row_pass(row, &geom, i, tmp),
    );
    let ptr = Ptr(data.as_mut_ptr());
    col_pass(&ptr, &|j_out, col| geom.col_shuffle_src_row(j_out, col));
}

/// Stage column `col` (elements of `ew` words each) into `tmp`, then
/// overwrite it through the gather `src` — the wide-element twin of
/// [`apply_col_pass`].
fn apply_col_pass_elems(
    data: &mut [u32],
    geom: &C2rGeometry,
    col: usize,
    ew: usize,
    tmp: &mut Vec<u32>,
    src: impl Fn(usize) -> usize,
) {
    let (m, n) = (geom.m, geom.n);
    tmp.clear();
    for r in 0..m {
        tmp.extend_from_slice(&data[(r * n + col) * ew..(r * n + col) * ew + ew]);
    }
    for k in 0..m {
        let s = src(k) * ew;
        data[(k * n + col) * ew..(k * n + col) * ew + ew].copy_from_slice(&tmp[s..s + ew]);
    }
}

/// Stage row `i` (elements of `ew` words each) into `tmp`, then overwrite
/// it through the phase-2 gather.
fn apply_row_pass_elems(
    row: &mut [u32],
    geom: &C2rGeometry,
    i: usize,
    ew: usize,
    tmp: &mut Vec<u32>,
) {
    tmp.clear();
    tmp.extend_from_slice(row);
    for j in 0..geom.n {
        let s = geom.row_shuffle_src_col(i, j) * ew;
        row[j * ew..j * ew + ew].copy_from_slice(&tmp[s..s + ew]);
    }
}

/// Sequential C2R over `elem_words`-word elements stored as flat `u32`
/// words — the host reference the recovery chain compares wide-element
/// (`f64`-class) payloads against. `elem_words = 1` is exactly
/// [`transpose_c2r_seq`].
///
/// # Panics
/// Panics if `elem_words` is zero or `data.len()` is not
/// `m_rows·n_cols·elem_words`.
pub fn transpose_c2r_seq_elems(
    data: &mut [u32],
    m_rows: usize,
    n_cols: usize,
    elem_words: usize,
) {
    assert!(elem_words >= 1, "elements must be at least one word wide");
    assert_eq!(data.len(), m_rows * n_cols * elem_words);
    let geom = C2rGeometry::new(m_rows, n_cols);
    let mut tmp = Vec::with_capacity(m_rows.max(n_cols) * elem_words);
    if geom.needs_rotate() {
        for q in 0..n_cols {
            apply_col_pass_elems(data, &geom, q, elem_words, &mut tmp, |i| {
                geom.rotate_src_row(i, q)
            });
        }
    }
    for (i, row) in data.chunks_exact_mut(n_cols * elem_words).enumerate() {
        apply_row_pass_elems(row, &geom, i, elem_words, &mut tmp);
    }
    for col in 0..n_cols {
        apply_col_pass_elems(data, &geom, col, elem_words, &mut tmp, |j_out| {
            geom.col_shuffle_src_row(j_out, col)
        });
    }
}

/// Rayon-parallel twin of [`transpose_c2r_seq_elems`]: columns in
/// parallel, rows in parallel, columns in parallel, each worker holding
/// one line of scratch.
///
/// # Panics
/// As [`transpose_c2r_seq_elems`].
pub fn transpose_c2r_par_elems(
    data: &mut [u32],
    m_rows: usize,
    n_cols: usize,
    elem_words: usize,
) {
    assert!(elem_words >= 1, "elements must be at least one word wide");
    assert_eq!(data.len(), m_rows * n_cols * elem_words);
    let ew = elem_words;
    let geom = C2rGeometry::new(m_rows, n_cols);
    struct Ptr(*mut u32);
    unsafe impl Sync for Ptr {}
    let len = data.len();
    let col_pass = |ptr: &Ptr, src_for: &(dyn Fn(usize, usize) -> usize + Sync)| {
        (0..n_cols).into_par_iter().for_each_init(
            || Vec::with_capacity(m_rows * ew),
            |tmp, col| {
                // SAFETY: column `col` touches only words whose element
                // index is ≡ col (mod N); columns are pairwise disjoint.
                let data = unsafe { std::slice::from_raw_parts_mut(ptr.0, len) };
                apply_col_pass_elems(data, &geom, col, ew, tmp, |k| src_for(k, col));
            },
        );
    };
    if geom.needs_rotate() {
        let ptr = Ptr(data.as_mut_ptr());
        col_pass(&ptr, &|i, q| geom.rotate_src_row(i, q));
    }
    data.par_chunks_exact_mut(n_cols * ew).enumerate().for_each_init(
        || Vec::with_capacity(n_cols * ew),
        |tmp, (i, row)| apply_row_pass_elems(row, &geom, i, ew, tmp),
    );
    let ptr = Ptr(data.as_mut_ptr());
    col_pass(&ptr, &|j_out, col| geom.col_shuffle_src_row(j_out, col));
}

/// Convenience wrapper over [`Matrix`].
///
/// # Panics
/// As [`transpose_c2r_seq`] (zero dimensions only).
#[must_use]
pub fn transpose_matrix_c2r<T: Copy + Send + Sync>(matrix: Matrix<T>) -> Matrix<T> {
    let (m, n) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    transpose_c2r_par(matrix.as_mut_slice(), m, n);
    matrix.assume_transposed_shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coprime::{minv_for, phase1_src_col, phase2_src_row};

    /// c = 1, c > 1, degenerate, square, prime — the planner's whole range.
    const SHAPES: &[(usize, usize)] = &[
        (1, 1),
        (1, 7),
        (7, 1),
        (2, 8),
        (8, 2),
        (4, 6),
        (6, 4),
        (5, 3),
        (9, 9),
        (12, 18),
        (16, 16),
        (30, 42),
        (61, 45),
        (97, 101),
        (122, 183),
        (127, 61),
    ];

    #[test]
    fn geometry_basics() {
        let g = C2rGeometry::new(4, 6);
        assert_eq!((g.c, g.a, g.b), (2, 2, 3));
        assert_eq!(g.a_inv, 2, "2·2 = 4 ≡ 1 (mod 3)");
        assert!(g.needs_rotate());
        assert!(!C2rGeometry::new(5, 3).needs_rotate(), "c = 1 rotate is identity");
        assert!(!C2rGeometry::new(1, 6).needs_rotate(), "single row");
    }

    #[test]
    fn reduces_to_coprime_formulas_when_c_is_1() {
        for &(m, n) in &[(5usize, 3usize), (127, 61), (8, 9), (31, 45)] {
            let g = C2rGeometry::new(m, n);
            assert_eq!(g.c, 1);
            let minv = minv_for(m, n);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        g.row_shuffle_src_col(i, j),
                        phase1_src_col(i, j, m, n, minv),
                        "{m}x{n} i={i} j={j}"
                    );
                }
            }
            for col in 0..n {
                for j_out in 0..m {
                    assert_eq!(
                        g.col_shuffle_src_row(j_out, col),
                        phase2_src_row(j_out, col, m, n),
                        "{m}x{n} J={j_out} col={col}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_pass_is_a_per_line_bijection() {
        for &(m, n) in SHAPES {
            let g = C2rGeometry::new(m, n);
            for q in 0..n {
                let mut seen = vec![false; m];
                for i in 0..m {
                    let s = g.rotate_src_row(i, q);
                    assert!(!seen[s], "rotate {m}x{n} col {q} repeats row {s}");
                    seen[s] = true;
                }
            }
            for i in 0..m {
                let mut seen = vec![false; n];
                for j in 0..n {
                    let s = g.row_shuffle_src_col(i, j);
                    assert!(!seen[s], "row-shuffle {m}x{n} row {i} repeats col {s}");
                    seen[s] = true;
                }
            }
            for col in 0..n {
                let mut seen = vec![false; m];
                for j_out in 0..m {
                    let s = g.col_shuffle_src_row(j_out, col);
                    assert!(!seen[s], "col-shuffle {m}x{n} col {col} repeats row {s}");
                    seen[s] = true;
                }
            }
        }
    }

    #[test]
    fn seq_transposes_every_shape() {
        for &(m, n) in SHAPES {
            let mat = Matrix::iota(m, n);
            let mut data = mat.as_slice().to_vec();
            transpose_c2r_seq(&mut data, m, n);
            assert_eq!(data, mat.transposed().into_vec(), "{m}x{n}");
        }
    }

    #[test]
    fn par_matches_seq() {
        for &(m, n) in SHAPES {
            let mat = Matrix::pattern_f32(m, n);
            let mut a = mat.as_slice().to_vec();
            transpose_c2r_seq(&mut a, m, n);
            let mut b = mat.as_slice().to_vec();
            transpose_c2r_par(&mut b, m, n);
            assert_eq!(a, b, "{m}x{n}");
        }
    }

    #[test]
    fn paper_class_prime_rows() {
        // 7919 is the 1000th prime — the class the issue names; the column
        // count stays modest so the test runs in milliseconds.
        let (m, n) = (7919usize, 104usize);
        let mat = Matrix::iota(m, n);
        let got = transpose_matrix_c2r(mat.clone());
        assert_eq!(got, mat.transposed());
    }

    #[test]
    fn double_transpose_roundtrip() {
        for &(m, n) in &[(45usize, 61usize), (12, 18), (6, 4)] {
            let mat = Matrix::pattern_f32(m, n);
            let t = transpose_matrix_c2r(mat.clone());
            let back = transpose_matrix_c2r(t);
            assert_eq!(back, mat, "{m}x{n}");
        }
    }

    #[test]
    fn elems_paths_match_the_packed_wide_reference() {
        // 2-word elements through the flat-u32 helpers must agree with the
        // generic-T path over packed u64 elements, on every shape class.
        for &(m, n) in SHAPES {
            let packed: Vec<u64> =
                (0..m * n).map(|k| (k as u64) << 32 | (k as u64 ^ 0x5a5a)).collect();
            let mut want_packed = packed.clone();
            transpose_c2r_seq(&mut want_packed, m, n);
            let want: Vec<u32> = want_packed
                .iter()
                .flat_map(|v| [*v as u32, (*v >> 32) as u32])
                .collect();
            let flat: Vec<u32> =
                packed.iter().flat_map(|v| [*v as u32, (*v >> 32) as u32]).collect();
            let mut seq = flat.clone();
            transpose_c2r_seq_elems(&mut seq, m, n, 2);
            assert_eq!(seq, want, "seq {m}x{n}");
            let mut par = flat.clone();
            transpose_c2r_par_elems(&mut par, m, n, 2);
            assert_eq!(par, want, "par {m}x{n}");
            // Width 1 collapses to the word path.
            let mat = Matrix::iota(m, n);
            let mut one = mat.as_slice().to_vec();
            transpose_c2r_seq_elems(&mut one, m, n, 1);
            assert_eq!(one, mat.transposed().into_vec(), "ew=1 {m}x{n}");
        }
    }

    #[test]
    fn wide_elements_transpose_too() {
        // T is generic: a u64 payload models 2-word elements.
        let (m, n) = (24usize, 36usize);
        let src: Vec<u64> = (0..m * n).map(|k| (k as u64) << 32 | 0xabcd).collect();
        let mut data = src.clone();
        transpose_c2r_seq(&mut data, m, n);
        let mut want = vec![0u64; m * n];
        for r in 0..m {
            for q in 0..n {
                want[q * m + r] = src[r * n + q];
            }
        }
        assert_eq!(data, want);
    }
}
