//! # ipt-core — in-place transposition of rectangular matrices
//!
//! Host-side implementation of the algorithms from *"In-Place Transposition
//! of Rectangular Matrices on Accelerators"* (Sung, Gómez-Luna,
//! González-Linares, Guil, Hwu — PPoPP 2014):
//!
//! * the transposition permutation `k ↦ k·M mod (MN−1)` and its cycle
//!   structure ([`perm::cycle`]),
//! * factorial-number naming of staged dimension swaps ([`perm::factorial`]),
//! * the unified elementary tiled transposition covering `010!`, `100!`,
//!   `0100!`, `0010!`, `1000!` ([`elementary`]),
//! * 3-stage / 4-stage / fused / single-stage full plans ([`stages`]),
//! * automatic tile selection with the §7.4 pruning heuristic ([`tiles`]),
//! * AoS/SoA/ASTA layout marshaling ([`layout`]).
//!
//! The GPU-simulated execution of the same plans lives in the `ipt-gpu`
//! crate; CPU baselines (Gustavson/Karlsson, MKL-like) in `ipt-baselines`.
//!
//! ## Quick start
//!
//! ```
//! use ipt_core::{full::{transpose_in_place_par, Algorithm}, matrix::Matrix};
//!
//! let a = Matrix::iota(60, 48);
//! let expect = a.transposed();
//! let t = transpose_in_place_par(a, Algorithm::ThreeStage);
//! assert_eq!(t, expect);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod c2r;
pub mod check;
pub mod coprime;
pub mod elementary;
pub mod full;
pub mod scheme;
pub mod layout;
pub mod matrix;
pub mod numtheory;
pub mod outofcore;
pub mod perm;
pub mod stages;
pub mod tiles;

pub use elementary::{InstancedTranspose, IndexPerm};
pub use full::{transpose_in_place_any, transpose_in_place_par, transpose_in_place_seq, Algorithm};
pub use matrix::Matrix;
pub use perm::cycle::TransposePerm;
pub use scheme::{decide_scheme, FallbackReason, PlanDecision, Scheme};
pub use stages::{StagePlan, TileConfig};
pub use tiles::TileHeuristic;
pub use coprime::{transpose_coprime_par, transpose_coprime_seq, transpose_matrix_coprime};
pub use c2r::{
    transpose_c2r_par, transpose_c2r_par_elems, transpose_c2r_seq, transpose_c2r_seq_elems,
    transpose_matrix_c2r, C2rGeometry,
};
