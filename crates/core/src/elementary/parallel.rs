//! Multi-threaded execution of elementary transpositions on the host CPU.
//!
//! Two orthogonal sources of parallelism (mirroring §4 of the paper):
//!
//! 1. **Instances** — the `instances` chunks of an [`InstancedTranspose`] are
//!    independent; they parallelise perfectly (`par_chunks_exact_mut`).
//! 2. **Cycles** — within a single instance, disjoint cycles never overlap.
//!    This is the P-IPT strategy: one task per cycle. It suffers the load
//!    imbalance the paper describes (one cycle is often several times longer
//!    than all others); rayon's work stealing mitigates but cannot remove a
//!    single dominant cycle. The Gustavson/Karlsson a-priori cycle *splitting*
//!    that fixes this lives in `ipt-baselines::gkk`.

use rayon::prelude::*;

use super::{FusedTileTranspose, IndexPerm, InstancedTranspose, cycle_shift_seq};

/// Enumerate cycle leaders (minimum offset of each cycle) and cycle lengths
/// in a single O(len) pass using a visited bitmap (Berman-style bookkeeping,
/// one bit per element).
///
/// Fixed points are excluded — they need no movement.
#[must_use]
pub fn find_cycle_leaders(perm: &impl IndexPerm) -> Vec<(usize, usize)> {
    let n = perm.len();
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    for k in 0..n {
        if visited[k] {
            continue;
        }
        visited[k] = true;
        let mut cur = perm.dest(k);
        if cur == k {
            continue; // fixed point
        }
        let mut len = 1usize;
        while cur != k {
            visited[cur] = true;
            cur = perm.dest(cur);
            len += 1;
        }
        out.push((k, len));
    }
    out
}

/// Unsafe shared-slice handle allowing disjoint cycles to be shifted from
/// multiple threads. Soundness: the caller must only touch index sets that
/// are pairwise disjoint across threads — cycles of a permutation are.
struct SharedSlice<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    fn new(data: &mut [T]) -> Self {
        Self { ptr: data.as_mut_ptr(), len: data.len() }
    }

    /// Copy super-element `from` over super-element `to`.
    ///
    /// # Safety
    /// Caller guarantees both ranges are in bounds and no other thread
    /// accesses them concurrently.
    unsafe fn copy_super(&self, from: usize, to: usize, s: usize) {
        debug_assert!(from * s + s <= self.len && to * s + s <= self.len);
        unsafe { std::ptr::copy_nonoverlapping(self.ptr.add(from * s), self.ptr.add(to * s), s) };
    }

    unsafe fn read_super(&self, k: usize, s: usize, buf: &mut Vec<T>) {
        buf.clear();
        unsafe { buf.extend_from_slice(std::slice::from_raw_parts(self.ptr.add(k * s), s)) };
    }

    unsafe fn write_super(&self, k: usize, s: usize, buf: &[T]) {
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), self.ptr.add(k * s), s);
        }
    }
}

/// Shift one cycle (identified by any member `leader`) backwards with a
/// single temporary super-element.
///
/// # Safety
/// The cycle through `leader` must not be touched by any other thread.
unsafe fn shift_cycle<T: Copy>(
    data: &SharedSlice<T>,
    perm: &impl IndexPerm,
    leader: usize,
    super_size: usize,
) {
    let mut tmp = Vec::with_capacity(super_size);
    unsafe {
        data.read_super(leader, super_size, &mut tmp);
        let mut cur = leader;
        let mut prev = perm.src(cur);
        while prev != leader {
            data.copy_super(prev, cur, super_size);
            cur = prev;
            prev = perm.src(cur);
        }
        data.write_super(cur, super_size, &tmp);
    }
}

/// Cycle-parallel in-place shift: one rayon task per cycle (P-IPT).
///
/// # Panics
/// Panics if `data.len() != perm.len() * super_size`.
pub fn cycle_shift_par<T: Copy + Send + Sync>(
    data: &mut [T],
    perm: &impl IndexPerm,
    super_size: usize,
) {
    assert!(super_size > 0);
    assert_eq!(data.len(), perm.len() * super_size, "data/permutation size mismatch");
    let leaders = find_cycle_leaders(perm);
    let shared = SharedSlice::new(data);
    // Longest cycles first so the dominant cycle starts immediately and the
    // small ones fill in around it (greedy longest-processing-time order).
    let mut leaders = leaders;
    leaders.sort_unstable_by_key(|&(_, len)| std::cmp::Reverse(len));
    leaders.par_iter().for_each(|&(leader, _len)| {
        // SAFETY: cycles are pairwise disjoint index sets.
        unsafe { shift_cycle(&shared, perm, leader, super_size) };
    });
}

impl InstancedTranspose {
    /// Execute in place with rayon: instances in parallel; a single instance
    /// falls back to cycle-level parallelism.
    ///
    /// # Panics
    /// Panics if `data.len() != self.total_len()`.
    pub fn apply_par<T: Copy + Send + Sync>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.total_len(), "data length mismatch");
        let perm = self.perm();
        let il = self.instance_len();
        if self.instances > 1 {
            data.par_chunks_exact_mut(il).for_each(|chunk| {
                cycle_shift_seq(chunk, &perm, self.super_size);
            });
        } else {
            cycle_shift_par(data, &perm, self.super_size);
        }
    }
}

impl FusedTileTranspose {
    /// Execute in place with cycle-level parallelism.
    pub fn apply_par<T: Copy + Send + Sync>(&self, data: &mut [T]) {
        cycle_shift_par(data, self, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::cycle::TransposePerm;

    #[test]
    fn leaders_match_transpose_perm_leaders() {
        for &(r, c) in &[(5, 3), (7, 4), (6, 6), (2, 9), (1, 5)] {
            let p = TransposePerm::new(r, c);
            let fast: Vec<(usize, usize)> = find_cycle_leaders(&p);
            let slow: Vec<(usize, usize)> = p
                .leaders()
                .into_iter()
                .filter(|&(_, len)| len > 1)
                .map(|(k, len)| (k, len as usize))
                .collect();
            assert_eq!(fast, slow, "{r}x{c}");
        }
    }

    #[test]
    fn par_shift_matches_seq() {
        for &(r, c, s) in &[(5, 3, 1), (3, 5, 2), (16, 48, 1), (48, 16, 4), (61, 7, 3)] {
            let p = TransposePerm::new(r, c);
            let orig: Vec<u32> = (0..(r * c * s) as u32).collect();
            let mut seq = orig.clone();
            cycle_shift_seq(&mut seq, &p, s);
            let mut par = orig.clone();
            cycle_shift_par(&mut par, &p, s);
            assert_eq!(seq, par, "{r}x{c} super={s}");
        }
    }

    #[test]
    fn instanced_par_matches_seq_multi_instance() {
        for &(i, r, c, s) in &[(4, 5, 3, 2), (16, 8, 8, 1), (3, 2, 9, 4), (1, 12, 7, 2)] {
            let op = InstancedTranspose::new(i, r, c, s);
            let orig: Vec<u32> = (0..op.total_len() as u32).collect();
            let mut seq = orig.clone();
            op.apply_seq(&mut seq);
            let mut par = orig.clone();
            op.apply_par(&mut par);
            assert_eq!(seq, par, "{i}x{r}x{c}x{s}");
        }
    }

    #[test]
    fn fused_par_matches_seq() {
        let f = FusedTileTranspose::new(4, 5, 3, 2);
        let orig: Vec<u32> = (0..f.len() as u32).collect();
        let mut seq = orig.clone();
        f.apply_seq(&mut seq);
        let mut par = orig.clone();
        f.apply_par(&mut par);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_shift_large_stress() {
        // A larger matrix with a long dominant cycle exercises the
        // work-stealing path under real thread contention.
        let p = TransposePerm::new(720, 180);
        let orig: Vec<u32> = (0..p.len() as u32).collect();
        let mut par = orig.clone();
        cycle_shift_par(&mut par, &p, 1);
        let mut expect = vec![0u32; orig.len()];
        super::super::cycle_shift_oop(&orig, &mut expect, &p, 1);
        assert_eq!(par, expect);
    }
}
