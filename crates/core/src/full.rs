//! End-to-end in-place transposition drivers: pick an algorithm and a tile,
//! build the plan, execute.
//!
//! This is the host-side (pure CPU) entry point. The GPU-simulated execution
//! of the same plans lives in the `ipt-gpu` crate.

use crate::coprime;
use crate::matrix::Matrix;
use crate::numtheory::gcd;
use crate::scheme::{decide_scheme, transpose_square_in_place, Scheme};
use crate::stages::{PlanError, StagePlan, TileConfig};
use crate::tiles::TileHeuristic;

/// Which staged algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// One whole-matrix cycle-following pass (locality-poor baseline).
    SingleStage,
    /// The paper's 3-stage algorithm: `100! → 0010! → 0100!`.
    ThreeStage,
    /// Gustavson/Karlsson 4-stage: `0100! → 0010! → 1000! → 0100!`.
    FourStage,
    /// 4-stage with stages 2–3 fused.
    FourStageFused,
}

impl Algorithm {
    /// All algorithm variants (for sweeps).
    pub const ALL: [Algorithm; 4] =
        [Self::SingleStage, Self::ThreeStage, Self::FourStage, Self::FourStageFused];

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SingleStage => "single-stage",
            Self::ThreeStage => "3-stage",
            Self::FourStage => "4-stage",
            Self::FourStageFused => "4-stage-fused",
        }
    }

    /// Build the plan for this algorithm.
    ///
    /// # Errors
    /// Propagates tile divisibility failures (never fails for
    /// [`Algorithm::SingleStage`]).
    pub fn plan(self, rows: usize, cols: usize, tile: TileConfig) -> Result<StagePlan, PlanError> {
        match self {
            Self::SingleStage => Ok(StagePlan::single_stage(rows, cols)),
            Self::ThreeStage => StagePlan::three_stage(rows, cols, tile),
            Self::FourStage => StagePlan::four_stage(rows, cols, tile),
            Self::FourStageFused => StagePlan::four_stage_fused(rows, cols, tile),
        }
    }
}

/// Plan an in-place transposition with automatic tile selection via
/// [`decide_scheme`]: use the requested algorithm when the shape supports a
/// tiled staged plan, otherwise degrade deterministically to the
/// single-stage pass (the typed reason lives on the
/// [`crate::scheme::PlanDecision`] for callers that want it). Never panics.
#[must_use]
pub fn plan_auto(rows: usize, cols: usize, algo: Algorithm, heuristic: &TileHeuristic) -> StagePlan {
    if algo == Algorithm::SingleStage {
        return StagePlan::single_stage(rows, cols);
    }
    let decision = decide_scheme(rows, cols, heuristic);
    match (decision.scheme, decision.tile) {
        (Scheme::Staged | Scheme::GcdTiled | Scheme::SquareTiled, Some(tile)) => algo
            .plan(rows, cols, tile)
            .unwrap_or_else(|_| StagePlan::single_stage(rows, cols)),
        _ => StagePlan::single_stage(rows, cols),
    }
}

/// Degenerate/square short-circuit shared by the in-place drivers: `Some`
/// when the shape was handled without running any staged plan.
fn short_circuit<T: Copy>(matrix: Matrix<T>) -> Result<Matrix<T>, Matrix<T>> {
    let decision = decide_scheme(matrix.rows(), matrix.cols(), &TileHeuristic::default());
    match decision.scheme {
        // Row/column vectors (and empties): the storage is already the
        // transpose — only the shape flips.
        Scheme::Identity => Ok(matrix.assume_transposed_shape()),
        Scheme::SquareTiled => {
            let n = matrix.rows();
            let mut matrix = matrix;
            transpose_square_in_place(matrix.as_mut_slice(), n);
            Ok(matrix.assume_transposed_shape())
        }
        _ => Err(matrix),
    }
}

/// Transpose `matrix` in place (same backing storage) sequentially and
/// return it with the flipped shape. Degenerate shapes (`1 × n`, `m × 1`)
/// and squares short-circuit instead of running a staged plan.
#[must_use]
pub fn transpose_in_place_seq<T: Copy>(matrix: Matrix<T>, algo: Algorithm) -> Matrix<T> {
    let matrix = match short_circuit(matrix) {
        Ok(done) => return done,
        Err(m) => m,
    };
    let plan = plan_auto(matrix.rows(), matrix.cols(), algo, &TileHeuristic::default());
    let mut matrix = matrix;
    plan.execute_seq(matrix.as_mut_slice());
    matrix.assume_transposed_shape()
}

/// Transpose `matrix` in place using rayon and return it with the flipped
/// shape. Degenerate shapes (`1 × n`, `m × 1`) and squares short-circuit
/// instead of running a staged plan.
#[must_use]
pub fn transpose_in_place_par<T: Copy + Send + Sync>(matrix: Matrix<T>, algo: Algorithm) -> Matrix<T> {
    let matrix = match short_circuit(matrix) {
        Ok(done) => return done,
        Err(m) => m,
    };
    let plan = plan_auto(matrix.rows(), matrix.cols(), algo, &TileHeuristic::default());
    let mut matrix = matrix;
    plan.execute_par(matrix.as_mut_slice());
    matrix.assume_transposed_shape()
}

/// How [`transpose_in_place_any`] decided to transpose a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyRoute {
    /// A staged plan with a heuristic tile.
    Staged,
    /// The coprime two-phase decomposition (`gcd(M, N) = 1`).
    Coprime,
    /// A staged plan with the always-available `(c, c)` gcd tile.
    GcdTile,
    /// Trivial shapes (`min(M, N) = 1`) or awkward leftovers: the
    /// single-stage pass.
    SingleStage,
}

/// Decide the route for a shape (exposed so callers and tests can see the
/// dispatch without running it).
#[must_use]
pub fn route_for(rows: usize, cols: usize, heuristic: &TileHeuristic) -> AnyRoute {
    if rows <= 1 || cols <= 1 {
        return AnyRoute::SingleStage;
    }
    // A tile below ~16 elements degenerates the staged algorithm into
    // near-scalar shifting; prefer the dedicated routes then.
    if heuristic.select(rows, cols).is_some_and(|t| t.tile_len() >= 16) {
        return AnyRoute::Staged;
    }
    let c = gcd(rows as u64, cols as u64) as usize;
    if c == 1 {
        return AnyRoute::Coprime;
    }
    // The (c, c) tile always divides both dimensions; PTTWAC-010 handles
    // stage 2 even when c² exceeds the BS capacity, up to the local-memory
    // flag limit (~393k bits). Beyond that, give up on tiling.
    if c * c <= 262_144 {
        AnyRoute::GcdTile
    } else {
        AnyRoute::SingleStage
    }
}

/// Transpose **any** rectangular matrix in place — no divisibility
/// requirements. Removes the §7.4 prime-dimension limitation:
///
/// * a heuristic tile exists → the 3-stage algorithm,
/// * coprime dimensions → the two-phase decomposition
///   ([`crate::coprime`], after Catanzaro et al. \[25\]),
/// * otherwise `c = gcd(M, N) > 1` → the 3-stage algorithm with the
///   always-legal `(c, c)` tile,
/// * degenerate/awkward leftovers → the single-stage pass.
#[must_use]
pub fn transpose_in_place_any<T: Copy + Send + Sync>(matrix: Matrix<T>) -> Matrix<T> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let heuristic = TileHeuristic::default();
    match route_for(rows, cols, &heuristic) {
        AnyRoute::Staged => transpose_in_place_par(matrix, Algorithm::ThreeStage),
        AnyRoute::Coprime => coprime::transpose_matrix_coprime(matrix),
        AnyRoute::GcdTile => {
            let c = gcd(rows as u64, cols as u64) as usize;
            let plan = StagePlan::three_stage(rows, cols, TileConfig::new(c, c))
                .expect("gcd tile always divides");
            let mut matrix = matrix;
            plan.execute_par(matrix.as_mut_slice());
            matrix.assume_transposed_shape()
        }
        AnyRoute::SingleStage => {
            let mut matrix = matrix;
            StagePlan::single_stage(rows, cols).execute_par(matrix.as_mut_slice());
            matrix.assume_transposed_shape()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_transpose_all_algorithms() {
        for &(r, c) in &[(6, 15), (15, 6), (64, 48), (60, 60), (100, 36)] {
            let mat = Matrix::iota(r, c);
            let want = mat.transposed();
            for algo in Algorithm::ALL {
                let got = transpose_in_place_seq(mat.clone(), algo);
                assert_eq!(got, want, "{} {r}x{c} seq", algo.name());
                let got = transpose_in_place_par(mat.clone(), algo);
                assert_eq!(got, want, "{} {r}x{c} par", algo.name());
            }
        }
    }

    #[test]
    fn prime_dims_fall_back_to_single_stage() {
        let plan = plan_auto(7919, 13, Algorithm::ThreeStage, &TileHeuristic::default());
        // 13 has no divisor in range and 7919 is prime → fallback.
        // (13 divides itself, 7919 prime: select() may still find something
        // feasible like (7919, 13)? 7919·13 tile too big → None → fallback.)
        assert_eq!(plan.name, "single-stage");
        // It still transposes correctly (small prime case to keep test fast):
        let mat = Matrix::iota(31, 13);
        let got = transpose_in_place_seq(mat.clone(), Algorithm::ThreeStage);
        assert_eq!(got, mat.transposed());
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::ThreeStage.name(), "3-stage");
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn any_route_dispatch() {
        let h = TileHeuristic::default();
        assert_eq!(route_for(720, 180, &h), AnyRoute::Staged);
        assert_eq!(route_for(7919, 4099, &h), AnyRoute::Coprime); // both prime
        assert_eq!(route_for(1, 999, &h), AnyRoute::SingleStage);
        // 2·1009 × 2·997: no heuristic tile band, gcd 2 → GcdTile.
        let narrow = TileHeuristic { shared_capacity_words: 3600, preferred_lo: 50, preferred_hi: 100 };
        assert_eq!(route_for(2 * 1009, 2 * 997, &narrow), AnyRoute::GcdTile);
    }

    #[test]
    fn any_transposes_every_shape_class() {
        for &(r, c) in &[
            (720, 180),   // staged
            (127, 61),    // coprime (prime × prime)
            (2 * 53, 2 * 59), // gcd tile
            (1, 17),      // trivial
            (97, 128),    // coprime (prime × power of two)
        ] {
            let m = Matrix::iota(r, c);
            assert_eq!(transpose_in_place_any(m.clone()), m.transposed(), "{r}x{c}");
        }
    }

    #[test]
    fn degenerate_shapes_short_circuit_and_round_trip() {
        for &(r, c) in &[(1, 1), (1, 257), (509, 1), (1, 7919)] {
            let m = Matrix::iota(r, c);
            for algo in Algorithm::ALL {
                let got = transpose_in_place_seq(m.clone(), algo);
                assert_eq!(got, m.transposed(), "{} {r}x{c}", algo.name());
                assert_eq!((got.rows(), got.cols()), (c, r));
                let back = transpose_in_place_par(got, algo);
                assert_eq!(back, m, "round trip {r}x{c}");
            }
        }
    }

    #[test]
    fn square_shapes_short_circuit_and_round_trip() {
        // 61 prime (no feasible square tile), 60 richly composite.
        for n in [2usize, 31, 60, 61] {
            let m = Matrix::iota(n, n);
            let got = transpose_in_place_par(m.clone(), Algorithm::ThreeStage);
            assert_eq!(got, m.transposed(), "{n}x{n}");
            assert_eq!(transpose_in_place_seq(got, Algorithm::ThreeStage), m);
        }
    }

    #[test]
    fn shapes_flip() {
        let got = transpose_in_place_seq(Matrix::iota(6, 15), Algorithm::ThreeStage);
        assert_eq!((got.rows(), got.cols()), (15, 6));
    }
}
