//! Elementary number theory used by the transposition-cycle analysis.
//!
//! The in-place transposition permutation `k ↦ kM mod (MN − 1)` is a unit
//! multiplication in the ring `Z_{MN−1}`, so its cycle structure is governed
//! by multiplicative orders modulo the divisors of `MN − 1` (Cate & Twigg,
//! TOMS 1977). Everything in this module is exact `u64`/`u128` arithmetic —
//! no floating point, no probabilistic primality.

/// Greatest common divisor (binary-free Euclid; inputs may be zero).
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple. Panics on overflow (debug) like ordinary `u64` mul.
#[must_use]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

/// Modular multiplication that cannot overflow (`u128` intermediate).
#[inline]
#[must_use]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `a^e mod m` by square-and-multiply.
///
/// Used to jump `t` steps along a transposition cycle in `O(log t)`:
/// `succ^t(k) = k · M^t mod (MN − 1)` — the basis of a-priori cycle
/// splitting in the Gustavson/Karlsson parallel CPU implementation.
#[must_use]
pub fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Modular inverse of `a` modulo `n` via the extended Euclidean algorithm;
/// `None` when `gcd(a, n) != 1`. `mod_inverse(x, 1) == Some(0)`.
#[must_use]
pub fn mod_inverse(a: u64, n: u64) -> Option<u64> {
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0);
    }
    let (mut old_r, mut r) = (a as i128 % n as i128, n as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None; // not coprime
    }
    Some(old_s.rem_euclid(n as i128) as u64)
}

/// Prime factorisation by trial division, returned as `(prime, exponent)`
/// pairs in increasing prime order. Fine for the magnitudes in this crate
/// (`MN − 1` of matrices that fit in memory).
#[must_use]
pub fn factorize(mut n: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut p = 2u64;
    while p * p <= n {
        if n.is_multiple_of(p) {
            let mut e = 0u32;
            while n.is_multiple_of(p) {
                n /= p;
                e += 1;
            }
            out.push((p, e));
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push((n, 1));
    }
    out
}

/// All divisors of `n`, sorted ascending. `divisors(0)` is empty.
#[must_use]
pub fn divisors(n: u64) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut divs = vec![1u64];
    for (p, e) in factorize(n) {
        let prev = divs.clone();
        let mut pe = 1u64;
        for _ in 0..e {
            pe *= p;
            divs.extend(prev.iter().map(|d| d * pe));
        }
    }
    divs.sort_unstable();
    divs
}

/// Euler's totient φ(n).
#[must_use]
pub fn totient(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut phi = n;
    for (p, _) in factorize(n) {
        phi = phi / p * (p - 1);
    }
    phi
}

/// Multiplicative order of `a` modulo `n`: the least `t > 0` with
/// `a^t ≡ 1 (mod n)`. Requires `gcd(a, n) == 1`; returns `None` otherwise.
/// `order(anything, 1)` is `Some(1)`.
#[must_use]
pub fn multiplicative_order(a: u64, n: u64) -> Option<u64> {
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(1);
    }
    let a = a % n;
    if gcd(a, n) != 1 {
        return None;
    }
    // The order divides λ(n) | φ(n); test divisors of φ(n) ascending is
    // wasteful for huge n, so use the standard reduction: start from φ(n)
    // and strip prime factors while the power stays 1.
    let phi = totient(n);
    let mut ord = phi;
    for (p, e) in factorize(phi) {
        for _ in 0..e {
            if ord.is_multiple_of(p) && pow_mod(a, ord / p, n) == 1 {
                ord /= p;
            } else {
                break;
            }
        }
    }
    debug_assert_eq!(pow_mod(a, ord, n), 1);
    Some(ord)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(0, 5), 0);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(7, 13), 91);
    }

    #[test]
    fn pow_mod_matches_naive() {
        for a in 0..20u64 {
            for e in 0..12u64 {
                for m in 1..30u64 {
                    let mut naive = 1u64 % m;
                    for _ in 0..e {
                        naive = naive * a % m;
                    }
                    assert_eq!(pow_mod(a, e, m), naive, "a={a} e={e} m={m}");
                }
            }
        }
    }

    #[test]
    fn pow_mod_large_no_overflow() {
        // 2^63 mod a large prime; would overflow naive u64 multiplication.
        let p = 18_446_744_073_709_551_557; // largest u64 prime
        let r = pow_mod(2, 200, p);
        assert!(r < p);
        // Fermat: 2^(p-1) ≡ 1 mod p.
        assert_eq!(pow_mod(2, p - 1, p), 1);
    }

    #[test]
    fn factorize_roundtrip() {
        for n in 1..500u64 {
            let f = factorize(n);
            let back: u64 = f.iter().map(|&(p, e)| p.pow(e)).product();
            assert_eq!(back, n);
            for w in f.windows(2) {
                assert!(w[0].0 < w[1].0, "primes sorted");
            }
        }
    }

    #[test]
    fn divisors_small() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(14), vec![1, 2, 7, 14]);
        assert!(divisors(0).is_empty());
    }

    #[test]
    fn divisors_count_matches_brute_force() {
        for n in 1..300u64 {
            let brute: Vec<u64> = (1..=n).filter(|d| n % d == 0).collect();
            assert_eq!(divisors(n), brute, "n={n}");
        }
    }

    #[test]
    fn totient_small() {
        let expect = [0, 1, 1, 2, 2, 4, 2, 6, 4, 6, 4, 10, 4];
        for (n, &phi) in expect.iter().enumerate() {
            assert_eq!(totient(n as u64), phi, "n={n}");
        }
    }

    #[test]
    fn totient_matches_brute_force() {
        for n in 1..200u64 {
            let brute = (1..=n).filter(|&k| gcd(k, n) == 1).count() as u64;
            assert_eq!(totient(n), brute, "n={n}");
        }
    }

    #[test]
    fn order_examples() {
        // ord_7(5): 5,4,6,2,3,1 → 6
        assert_eq!(multiplicative_order(5, 7), Some(6));
        // ord_14(5): 5,11,13,9,3,1 → 6 (used by the paper's 5×3 example)
        assert_eq!(multiplicative_order(5, 14), Some(6));
        assert_eq!(multiplicative_order(1, 9), Some(1));
        assert_eq!(multiplicative_order(3, 1), Some(1));
        assert_eq!(multiplicative_order(6, 14), None, "not coprime");
    }

    #[test]
    fn order_matches_brute_force() {
        for n in 2..120u64 {
            for a in 1..n {
                if gcd(a, n) != 1 {
                    assert_eq!(multiplicative_order(a, n), None);
                    continue;
                }
                let mut x = a % n;
                let mut t = 1;
                while x != 1 {
                    x = x * a % n;
                    t += 1;
                }
                assert_eq!(multiplicative_order(a, n), Some(t), "a={a} n={n}");
            }
        }
    }
}
