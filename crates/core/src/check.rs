//! Checked index/size arithmetic for huge matrices.
//!
//! Cycle-following indices and checksum/byte totals involve
//! `rows * cols * elem` intermediates. On a 32-bit target (or anywhere a
//! result is narrowed to `u32`, as GPU kernels routinely do) those products
//! wrap silently: `65_536 × 65_537` elements is `2³² + 65_536`, which
//! truncates to `65_536` — a plausible-looking but catastrophically wrong
//! element count. Every size computation in the workspace goes through the
//! helpers here, which perform the multiplication in `u128` and hand back
//! exact `u64` values (or `None` when even `u64` would overflow).

/// Exact element count `rows * cols` as `u64`, or `None` on overflow.
///
/// Returns `Some(0)` for empty shapes — callers that treat zero elements as
/// invalid must check separately.
#[must_use]
pub fn checked_words(rows: usize, cols: usize) -> Option<u64> {
    let prod = (rows as u128).checked_mul(cols as u128)?;
    u64::try_from(prod).ok()
}

/// Exact byte count `rows * cols * elem_bytes` as `u64`, or `None` on
/// overflow.
#[must_use]
pub fn checked_bytes(rows: usize, cols: usize, elem_bytes: usize) -> Option<u64> {
    let prod = (rows as u128)
        .checked_mul(cols as u128)?
        .checked_mul(elem_bytes as u128)?;
    u64::try_from(prod).ok()
}

/// `rows * cols * elem_bytes` as `f64` without any intermediate narrowing.
///
/// Bandwidth math wants a float anyway; computing the product in `u128`
/// first means the only precision loss is the final (monotonic) `f64`
/// rounding, never a wrap.
#[must_use]
pub fn bytes_f64(rows: usize, cols: usize, elem_bytes: usize) -> f64 {
    (rows as u128).saturating_mul(cols as u128).saturating_mul(elem_bytes as u128) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The overflow boundary: the smallest interesting shape whose element
    /// count exceeds `u32::MAX`.
    const R: usize = 65_536;
    const C: usize = 65_537;

    #[test]
    fn boundary_words_are_exact() {
        // 65_536 · 65_537 = 2³² + 2¹⁶ — one past the u32 boundary.
        assert_eq!(checked_words(R, C), Some(4_295_032_832));
        // A 32-bit wrap would have produced 65_536 — catch any regression
        // back to narrow arithmetic.
        let wrapped = ((R as u32).wrapping_mul(C as u32)) as u64;
        assert_eq!(wrapped, 65_536);
        assert_ne!(checked_words(R, C), Some(wrapped));
    }

    #[test]
    fn boundary_bytes_are_exact() {
        assert_eq!(checked_bytes(R, C, 4), Some(4 * 4_295_032_832));
        assert_eq!(checked_bytes(R, C, 8), Some(8 * 4_295_032_832));
        let naive32 = (R as u32).wrapping_mul(C as u32).wrapping_mul(4);
        assert_ne!(checked_bytes(R, C, 4), Some(u64::from(naive32)));
    }

    #[test]
    fn f64_bytes_match_checked_on_representable_sizes() {
        for &(r, c, e) in &[(1usize, 1usize, 4usize), (720, 180, 4), (R, C, 8)] {
            let exact = checked_bytes(r, c, e).unwrap();
            let float = bytes_f64(r, c, e);
            assert_eq!(float, exact as f64, "{r}x{c}x{e}");
        }
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        if usize::BITS == 64 {
            assert_eq!(checked_words(usize::MAX, 2), None);
            assert_eq!(checked_bytes(usize::MAX, 1, 4), None);
        }
        assert_eq!(checked_words(0, 123), Some(0));
        assert_eq!(checked_bytes(17, 0, 8), Some(0));
    }
}
