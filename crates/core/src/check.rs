//! Checked index/size arithmetic for huge matrices.
//!
//! Cycle-following indices and checksum/byte totals involve
//! `rows * cols * elem` intermediates. On a 32-bit target (or anywhere a
//! result is narrowed to `u32`, as GPU kernels routinely do) those products
//! wrap silently: `65_536 × 65_537` elements is `2³² + 65_536`, which
//! truncates to `65_536` — a plausible-looking but catastrophically wrong
//! element count. Every size computation in the workspace goes through the
//! helpers here, which perform the multiplication in `u128` and hand back
//! exact `u64` values (or `None` when even `u64` would overflow).

/// Exact element count `rows * cols` as `u64`, or `None` on overflow.
///
/// Returns `Some(0)` for empty shapes — callers that treat zero elements as
/// invalid must check separately.
#[must_use]
pub fn checked_words(rows: usize, cols: usize) -> Option<u64> {
    let prod = (rows as u128).checked_mul(cols as u128)?;
    u64::try_from(prod).ok()
}

/// Exact byte count `rows * cols * elem_bytes` as `u64`, or `None` on
/// overflow.
#[must_use]
pub fn checked_bytes(rows: usize, cols: usize, elem_bytes: usize) -> Option<u64> {
    let prod = (rows as u128)
        .checked_mul(cols as u128)?
        .checked_mul(elem_bytes as u128)?;
    u64::try_from(prod).ok()
}

/// Typed overflow/size errors for out-of-core chunk planning.
///
/// The streaming planner computes per-panel byte totals and chunk counts for
/// matrices that deliberately exceed device memory; at those scales the
/// intermediates brush against `u64::MAX` and an `Option` is no longer
/// enough — callers need to know *which* computation failed and with what
/// operands to produce an actionable diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SizeError {
    /// `rows * cols * elem_bytes` exceeds `u64::MAX`.
    BytesOverflow {
        /// Panel row count that overflowed.
        rows: usize,
        /// Panel column count that overflowed.
        cols: usize,
        /// Element width in bytes.
        elem_bytes: usize,
    },
    /// A zero chunk size makes the chunk count undefined.
    EmptyChunk,
    /// A zero-sized dimension where a non-empty panel is required.
    EmptyPanel {
        /// Offending row count.
        rows: usize,
        /// Offending column count.
        cols: usize,
    },
}

impl core::fmt::Display for SizeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BytesOverflow { rows, cols, elem_bytes } => write!(
                f,
                "panel byte count {rows}x{cols}x{elem_bytes} overflows u64"
            ),
            Self::EmptyChunk => write!(f, "chunk size must be non-zero"),
            Self::EmptyPanel { rows, cols } => {
                write!(f, "panel {rows}x{cols} has no elements")
            }
        }
    }
}

impl std::error::Error for SizeError {}

/// Exact byte count of one ASTA panel (`rows * cols * elem_bytes`) with a
/// typed error instead of a bare `None`.
///
/// Unlike [`checked_bytes`] this rejects empty panels: a zero-byte chunk in
/// a streaming plan is always a planner bug, never a degenerate success.
pub fn panel_bytes(rows: usize, cols: usize, elem_bytes: usize) -> Result<u64, SizeError> {
    if rows == 0 || cols == 0 || elem_bytes == 0 {
        return Err(SizeError::EmptyPanel { rows, cols });
    }
    checked_bytes(rows, cols, elem_bytes)
        .ok_or(SizeError::BytesOverflow { rows, cols, elem_bytes })
}

/// Number of chunks of `chunk_rows` rows needed to cover `total_rows`
/// (ceiling division), with a typed error for the undefined zero-chunk case.
pub fn chunk_count(total_rows: usize, chunk_rows: usize) -> Result<u64, SizeError> {
    if chunk_rows == 0 {
        return Err(SizeError::EmptyChunk);
    }
    // u128 so the ceiling division cannot wrap even at usize::MAX.
    let n = (total_rows as u128).div_ceil(chunk_rows as u128);
    u64::try_from(n).map_err(|_| SizeError::EmptyChunk)
}

/// `rows * cols * elem_bytes` as `f64` without any intermediate narrowing.
///
/// Bandwidth math wants a float anyway; computing the product in `u128`
/// first means the only precision loss is the final (monotonic) `f64`
/// rounding, never a wrap.
#[must_use]
pub fn bytes_f64(rows: usize, cols: usize, elem_bytes: usize) -> f64 {
    (rows as u128).saturating_mul(cols as u128).saturating_mul(elem_bytes as u128) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The overflow boundary: the smallest interesting shape whose element
    /// count exceeds `u32::MAX`.
    const R: usize = 65_536;
    const C: usize = 65_537;

    #[test]
    fn boundary_words_are_exact() {
        // 65_536 · 65_537 = 2³² + 2¹⁶ — one past the u32 boundary.
        assert_eq!(checked_words(R, C), Some(4_295_032_832));
        // A 32-bit wrap would have produced 65_536 — catch any regression
        // back to narrow arithmetic.
        let wrapped = ((R as u32).wrapping_mul(C as u32)) as u64;
        assert_eq!(wrapped, 65_536);
        assert_ne!(checked_words(R, C), Some(wrapped));
    }

    #[test]
    fn boundary_bytes_are_exact() {
        assert_eq!(checked_bytes(R, C, 4), Some(4 * 4_295_032_832));
        assert_eq!(checked_bytes(R, C, 8), Some(8 * 4_295_032_832));
        let naive32 = (R as u32).wrapping_mul(C as u32).wrapping_mul(4);
        assert_ne!(checked_bytes(R, C, 4), Some(u64::from(naive32)));
    }

    #[test]
    fn f64_bytes_match_checked_on_representable_sizes() {
        for &(r, c, e) in &[(1usize, 1usize, 4usize), (720, 180, 4), (R, C, 8)] {
            let exact = checked_bytes(r, c, e).unwrap();
            let float = bytes_f64(r, c, e);
            assert_eq!(float, exact as f64, "{r}x{c}x{e}");
        }
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        if usize::BITS == 64 {
            assert_eq!(checked_words(usize::MAX, 2), None);
            assert_eq!(checked_bytes(usize::MAX, 1, 4), None);
        }
        assert_eq!(checked_words(0, 123), Some(0));
        assert_eq!(checked_bytes(17, 0, 8), Some(0));
    }

    #[test]
    fn panel_bytes_at_two_pow_63_boundary() {
        if usize::BITS < 64 {
            return;
        }
        // 2^63 bytes exactly: representable, one bit below the u64 edge.
        let r = 1usize << 31;
        let c = 1usize << 30;
        assert_eq!(panel_bytes(r, c, 4), Ok(1u64 << 63));
        // 2^64 bytes: one doubling past the edge — typed error, not a wrap.
        assert_eq!(
            panel_bytes(r, c, 8),
            Err(SizeError::BytesOverflow { rows: r, cols: c, elem_bytes: 8 })
        );
        // 2^64 - 8 bytes: the largest 8-byte-element panel that still fits.
        let r2 = (1usize << 31) - 1;
        let c2 = 1usize << 30;
        let expect = (r2 as u128 * c2 as u128 * 8) as u64;
        assert_eq!(panel_bytes(r2, c2, 8), Ok(expect));
        assert!(expect > (1u64 << 63), "must exercise the top bit");
    }

    #[test]
    fn panel_bytes_rejects_empty_and_matches_checked() {
        assert_eq!(panel_bytes(0, 7, 4), Err(SizeError::EmptyPanel { rows: 0, cols: 7 }));
        assert_eq!(panel_bytes(7, 0, 4), Err(SizeError::EmptyPanel { rows: 7, cols: 0 }));
        assert_eq!(panel_bytes(7, 5, 0), Err(SizeError::EmptyPanel { rows: 7, cols: 5 }));
        // The u32-wrap shape from the module docs, per chunk: a 65536-row
        // chunk of a 65537-wide matrix must report the exact 2^32-adjacent
        // byte count, not a narrowed one.
        assert_eq!(panel_bytes(R, C, 4), Ok(4 * 4_295_032_832));
        let naive32 = (R as u32).wrapping_mul(C as u32).wrapping_mul(4);
        assert_ne!(panel_bytes(R, C, 4), Ok(u64::from(naive32)));
    }

    #[test]
    fn chunk_count_is_ceiling_and_total() {
        assert_eq!(chunk_count(0, 16), Ok(0));
        assert_eq!(chunk_count(1, 16), Ok(1));
        assert_eq!(chunk_count(16, 16), Ok(1));
        assert_eq!(chunk_count(17, 16), Ok(2));
        assert_eq!(chunk_count(C, R), Ok(2)); // 65_537 rows in 65_536-row chunks
        assert_eq!(chunk_count(123, 0), Err(SizeError::EmptyChunk));
        // usize::MAX rows in 1-row chunks: ceiling math must not wrap.
        if usize::BITS == 64 {
            assert_eq!(chunk_count(usize::MAX, 1), Ok(u64::MAX));
            assert_eq!(chunk_count(usize::MAX, 2), Ok(1u64 << 63));
        }
    }

    #[test]
    fn size_error_displays_operands() {
        let e = SizeError::BytesOverflow { rows: 3, cols: 4, elem_bytes: 8 };
        assert!(format!("{e}").contains("3x4x8"));
        assert!(format!("{}", SizeError::EmptyChunk).contains("non-zero"));
    }
}
