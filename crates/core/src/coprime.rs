//! General-dimension in-place transposition for **coprime** shapes — the
//! extension that removes the paper's own §7.4 limitation ("when the
//! algorithm cannot choose a good tile size (e.g., prime-number
//! dimensions), the throughput would be degraded"). The paper's footnote 6
//! points at the contemporaneous decomposition of Catanzaro, Keller &
//! Garland (PPoPP 2014 [25]); this module implements an independently
//! derived two-phase decomposition for the `gcd(M, N) = 1` case, which is
//! exactly the case the staged algorithm cannot tile (for `gcd > 1` the
//! `(c, c)` tile always exists).
//!
//! ## The decomposition
//!
//! For a row-major `M × N` matrix with `gcd(M, N) = 1`:
//!
//! 1. **Row scramble** — within each row `r`, the element in column `q`
//!    moves to column `(q·M + r) mod N`. Rows are independent; the map is
//!    bijective because `gcd(M, N) = 1`.
//! 2. **Column shuffle** — within each column `c`, the element needed at
//!    (final) row `J` currently sits at row `(J·N + c) mod M` (gather
//!    form). Columns are independent.
//!
//! Afterwards the buffer is exactly the row-major `N × M` transpose:
//! phase 1 placed the element from `(r, q)` at column `(q·M + r) mod N`,
//! phase 2 moved it to row `(q·M + r) div N`, i.e. linear offset
//! `q·M + r`. ∎
//!
//! Both phases work on one row / one column at a time, so the scratch
//! requirement is `max(M, N)` elements per worker — the same
//! "on-chip-sized, bounded" standard the paper's kernels meet — never a
//! second matrix.

//! ```
//! use ipt_core::{Matrix, transpose_matrix_coprime};
//! let a = Matrix::iota(127, 61); // both prime — untileable by either dimension
//! let t = transpose_matrix_coprime(a.clone());
//! assert_eq!(t, a.transposed());
//! ```

use crate::matrix::Matrix;
use crate::numtheory::{gcd, mod_inverse};
use rayon::prelude::*;

/// Phase-1 gather: the element that ends in column `q_out` of row `r`
/// comes from column `(q_out − r)·M⁻¹ mod N`.
#[inline]
#[must_use]
pub fn phase1_src_col(r: usize, q_out: usize, m_rows: usize, n_cols: usize, minv: usize) -> usize {
    debug_assert!(r < m_rows && q_out < n_cols);
    let _ = m_rows;
    let diff = (q_out + n_cols - r % n_cols) % n_cols;
    (diff * minv) % n_cols
}

/// Phase-2 gather: the element that ends in (final) row `j_out` of column
/// `c` comes from row `(j_out·N + c) mod M`.
#[inline]
#[must_use]
pub fn phase2_src_row(j_out: usize, c: usize, m_rows: usize, n_cols: usize) -> usize {
    debug_assert!(c < n_cols);
    (j_out * n_cols + c) % m_rows
}

/// The modular inverse `M⁻¹ mod N` both phases need.
///
/// # Panics
/// Panics if `gcd(M, N) != 1`.
#[must_use]
pub fn minv_for(m_rows: usize, n_cols: usize) -> usize {
    mod_inverse(m_rows as u64 % n_cols.max(1) as u64, n_cols as u64)
        .expect("coprime dimensions required") as usize
}

/// Is this shape handled by the coprime decomposition?
#[must_use]
pub fn is_coprime_shape(m_rows: usize, n_cols: usize) -> bool {
    m_rows > 1 && n_cols > 1 && gcd(m_rows as u64, n_cols as u64) == 1
}

fn phase1_row<T: Copy>(row: &mut [T], r: usize, m_rows: usize, minv: usize, tmp: &mut Vec<T>) {
    let n = row.len();
    tmp.clear();
    tmp.extend_from_slice(row);
    for (q_out, slot) in row.iter_mut().enumerate() {
        *slot = tmp[phase1_src_col(r, q_out, m_rows, n, minv)];
    }
}

fn phase2_col<T: Copy>(
    data: &mut [T],
    c: usize,
    m_rows: usize,
    n_cols: usize,
    tmp: &mut Vec<T>,
) {
    tmp.clear();
    tmp.extend((0..m_rows).map(|r| data[r * n_cols + c]));
    for j_out in 0..m_rows {
        data[j_out * n_cols + c] = tmp[phase2_src_row(j_out, c, m_rows, n_cols)];
    }
}

/// Sequential in-place transposition of a row-major `M × N` buffer with
/// coprime dimensions. Scratch: one row plus one column.
///
/// # Panics
/// Panics if `data.len() != m_rows·n_cols` or the dimensions share a
/// factor.
pub fn transpose_coprime_seq<T: Copy>(data: &mut [T], m_rows: usize, n_cols: usize) {
    assert_eq!(data.len(), m_rows * n_cols);
    assert!(is_coprime_shape(m_rows, n_cols), "dimensions must be coprime and > 1");
    let minv = minv_for(m_rows, n_cols);
    let mut tmp = Vec::with_capacity(m_rows.max(n_cols));
    for (r, row) in data.chunks_exact_mut(n_cols).enumerate() {
        phase1_row(row, r, m_rows, minv, &mut tmp);
    }
    for c in 0..n_cols {
        phase2_col(data, c, m_rows, n_cols, &mut tmp);
    }
}

/// Rayon-parallel variant: rows in parallel, then columns in parallel
/// (each worker keeps its own row/column scratch).
///
/// # Panics
/// As [`transpose_coprime_seq`].
pub fn transpose_coprime_par<T: Copy + Send + Sync>(
    data: &mut [T],
    m_rows: usize,
    n_cols: usize,
) {
    assert_eq!(data.len(), m_rows * n_cols);
    assert!(is_coprime_shape(m_rows, n_cols), "dimensions must be coprime and > 1");
    let minv = minv_for(m_rows, n_cols);
    data.par_chunks_exact_mut(n_cols).enumerate().for_each_init(
        || Vec::with_capacity(n_cols),
        |tmp, (r, row)| phase1_row(row, r, m_rows, minv, tmp),
    );
    // Columns: disjoint stride-N index sets; use the same raw-pointer
    // pattern as the cycle engine.
    struct Ptr<T>(*mut T);
    unsafe impl<T: Send> Sync for Ptr<T> {}
    impl<T> Ptr<T> {
        // A method so closures capture `&Ptr<T>` (which is `Sync`) rather
        // than the bare `*mut T` field.
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let ptr = Ptr(data.as_mut_ptr());
    (0..n_cols).into_par_iter().for_each_init(
        || Vec::with_capacity(m_rows),
        |tmp, c| {
            // SAFETY: column c touches only offsets ≡ c (mod n_cols);
            // columns are pairwise disjoint.
            let data = unsafe { std::slice::from_raw_parts_mut(ptr.get(), m_rows * n_cols) };
            phase2_col(data, c, m_rows, n_cols, tmp);
        },
    );
}

/// Convenience wrapper over [`Matrix`].
///
/// # Panics
/// As [`transpose_coprime_seq`].
#[must_use]
pub fn transpose_matrix_coprime<T: Copy + Send + Sync>(matrix: Matrix<T>) -> Matrix<T> {
    let (m, n) = (matrix.rows(), matrix.cols());
    let mut matrix = matrix;
    transpose_coprime_par(matrix.as_mut_slice(), m, n);
    matrix.assume_transposed_shape()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_formulas_invert_each_other() {
        for &(m, n) in &[(5usize, 3usize), (8, 9), (127, 64), (31, 45)] {
            let minv = minv_for(m, n);
            for r in 0..m {
                for q in 0..n {
                    let q1 = (q * m + r) % n; // scatter form of phase 1
                    assert_eq!(phase1_src_col(r, q1, m, n, minv), q, "{m}x{n} r={r} q={q}");
                }
            }
        }
    }

    #[test]
    fn seq_transposes_coprime_shapes() {
        for &(m, n) in &[(5usize, 3usize), (3, 5), (2, 9), (9, 2), (127, 64), (61, 45), (997, 8)] {
            let mat = Matrix::iota(m, n);
            let mut data = mat.as_slice().to_vec();
            transpose_coprime_seq(&mut data, m, n);
            assert_eq!(data, mat.transposed().into_vec(), "{m}x{n}");
        }
    }

    #[test]
    fn par_matches_seq() {
        for &(m, n) in &[(61usize, 45usize), (128, 127), (45, 61), (253, 16)] {
            let mat = Matrix::pattern_f32(m, n);
            let mut a = mat.as_slice().to_vec();
            transpose_coprime_seq(&mut a, m, n);
            let mut b = mat.as_slice().to_vec();
            transpose_coprime_par(&mut b, m, n);
            assert_eq!(a, b, "{m}x{n}");
        }
    }

    #[test]
    fn prime_times_prime_works() {
        // The paper's worst case: both dimensions prime.
        let (m, n) = (127usize, 61usize);
        let mat = Matrix::iota(m, n);
        let got = transpose_matrix_coprime(mat.clone());
        assert_eq!(got, mat.transposed());
    }

    #[test]
    fn shape_guard() {
        assert!(is_coprime_shape(127, 61));
        assert!(!is_coprime_shape(6, 4));
        assert!(!is_coprime_shape(1, 7), "1×n is trivial, not handled here");
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn non_coprime_rejected() {
        let mut data = vec![0u32; 24];
        transpose_coprime_seq(&mut data, 6, 4);
    }

    #[test]
    fn double_transpose_roundtrip() {
        let (m, n) = (45usize, 61usize);
        let mat = Matrix::pattern_f32(m, n);
        let t = transpose_matrix_coprime(mat.clone());
        let back = transpose_matrix_coprime(t);
        assert_eq!(back, mat);
    }
}
