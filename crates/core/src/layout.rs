//! Data-layout marshaling: AoS ↔ SoA ↔ ASTA conversions, expressed as
//! elementary transpositions (the original use of the building blocks in
//! Sung et al.'s DL system, recounted in §4.1 of the paper).
//!
//! * **AoS** (Array of Structures): `[n_structs][fields]`
//! * **SoA** (Structure of Arrays): `[fields][n_structs]`
//! * **ASTA** (Array of Structures of Tiled Arrays): `[n_structs/t][fields][t]`
//!   — AoS-like coalescing-friendly layout with tile height `t`.
//!
//! AoS→ASTA is `t × fields` tile transposition per chunk (`010!`); SoA→ASTA
//! shifts `t`-sized super-elements (`100!`). These are exactly the kernels
//! the staged full transposition reuses.

use crate::elementary::InstancedTranspose;

/// Description of a structured array: `n_structs` records of `fields`
/// scalars each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructArray {
    /// Number of records.
    pub n_structs: usize,
    /// Scalars per record.
    pub fields: usize,
}

impl StructArray {
    /// Construct; both dimensions must be positive.
    #[must_use]
    pub fn new(n_structs: usize, fields: usize) -> Self {
        assert!(n_structs > 0 && fields > 0);
        Self { n_structs, fields }
    }

    /// Total scalars.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n_structs * self.fields
    }

    /// Never true (dimensions are positive); for API hygiene.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `010!` operation converting AoS → ASTA with tile height `t`
    /// (`t` must divide `n_structs`): `A×t×F → A×F×t` where `A = n_structs/t`.
    ///
    /// # Panics
    /// Panics if `t` does not divide `n_structs`.
    #[must_use]
    pub fn aos_to_asta(&self, t: usize) -> InstancedTranspose {
        assert!(t > 0 && self.n_structs.is_multiple_of(t), "tile height {t} must divide {}", self.n_structs);
        InstancedTranspose::new(self.n_structs / t, t, self.fields, 1)
    }

    /// The inverse `010!` converting ASTA (tile height `t`) → AoS.
    #[must_use]
    pub fn asta_to_aos(&self, t: usize) -> InstancedTranspose {
        self.aos_to_asta(t).inverse()
    }

    /// The `100!` operation converting SoA → ASTA with tile height `t`:
    /// `F×A×t → A×F×t` (super-elements of size `t`).
    ///
    /// # Panics
    /// Panics if `t` does not divide `n_structs`.
    #[must_use]
    pub fn soa_to_asta(&self, t: usize) -> InstancedTranspose {
        assert!(t > 0 && self.n_structs.is_multiple_of(t), "tile height {t} must divide {}", self.n_structs);
        InstancedTranspose::new(1, self.fields, self.n_structs / t, t)
    }

    /// The inverse `100!` converting ASTA (tile height `t`) → SoA.
    #[must_use]
    pub fn asta_to_soa(&self, t: usize) -> InstancedTranspose {
        self.soa_to_asta(t).inverse()
    }

    /// Full AoS → SoA conversion (a plain `n_structs × fields`
    /// transposition).
    #[must_use]
    pub fn aos_to_soa(&self) -> InstancedTranspose {
        InstancedTranspose::new(1, self.n_structs, self.fields, 1)
    }

    /// Index of field `f` of record `r` in AoS layout.
    #[must_use]
    pub fn aos_index(&self, r: usize, f: usize) -> usize {
        debug_assert!(r < self.n_structs && f < self.fields);
        r * self.fields + f
    }

    /// Index of field `f` of record `r` in SoA layout.
    #[must_use]
    pub fn soa_index(&self, r: usize, f: usize) -> usize {
        debug_assert!(r < self.n_structs && f < self.fields);
        f * self.n_structs + r
    }

    /// Index of field `f` of record `r` in ASTA layout with tile height `t`.
    #[must_use]
    pub fn asta_index(&self, r: usize, f: usize, t: usize) -> usize {
        debug_assert!(r < self.n_structs && f < self.fields);
        let (chunk, within) = (r / t, r % t);
        chunk * (t * self.fields) + f * t + within
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill AoS data where record r field f = r*100 + f.
    fn aos_data(sa: StructArray) -> Vec<u32> {
        let mut v = vec![0u32; sa.len()];
        for r in 0..sa.n_structs {
            for f in 0..sa.fields {
                v[sa.aos_index(r, f)] = (r * 100 + f) as u32;
            }
        }
        v
    }

    #[test]
    fn aos_to_asta_layout() {
        let sa = StructArray::new(12, 5);
        for t in [1, 2, 3, 4, 6, 12] {
            let mut data = aos_data(sa);
            sa.aos_to_asta(t).apply_seq(&mut data);
            for r in 0..12 {
                for f in 0..5 {
                    assert_eq!(
                        data[sa.asta_index(r, f, t)],
                        (r * 100 + f) as u32,
                        "t={t} r={r} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn soa_to_asta_layout() {
        let sa = StructArray::new(12, 5);
        for t in [1, 2, 3, 4, 6, 12] {
            // Build SoA data.
            let mut data = vec![0u32; sa.len()];
            for r in 0..12 {
                for f in 0..5 {
                    data[sa.soa_index(r, f)] = (r * 100 + f) as u32;
                }
            }
            sa.soa_to_asta(t).apply_seq(&mut data);
            for r in 0..12 {
                for f in 0..5 {
                    assert_eq!(
                        data[sa.asta_index(r, f, t)],
                        (r * 100 + f) as u32,
                        "t={t} r={r} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn asta_roundtrips() {
        let sa = StructArray::new(24, 7);
        let orig = aos_data(sa);
        for t in [2, 3, 4, 6, 8] {
            let mut data = orig.clone();
            sa.aos_to_asta(t).apply_seq(&mut data);
            sa.asta_to_aos(t).apply_seq(&mut data);
            assert_eq!(data, orig, "t={t}");
        }
    }

    #[test]
    fn aos_to_soa_via_asta_equals_direct() {
        let sa = StructArray::new(24, 7);
        let orig = aos_data(sa);
        // Direct full transposition.
        let mut direct = orig.clone();
        sa.aos_to_soa().apply_seq(&mut direct);
        // AoS → ASTA → SoA.
        let mut staged = orig.clone();
        let t = 4;
        sa.aos_to_asta(t).apply_seq(&mut staged);
        sa.asta_to_soa(t).apply_seq(&mut staged);
        assert_eq!(staged, direct);
    }

    #[test]
    fn asta_index_with_tile_one_is_soa_like_aos() {
        // t = n_structs → ASTA is SoA; t = 1 → ASTA is AoS.
        let sa = StructArray::new(8, 3);
        for r in 0..8 {
            for f in 0..3 {
                assert_eq!(sa.asta_index(r, f, 1), sa.aos_index(r, f));
                assert_eq!(sa.asta_index(r, f, 8), sa.soa_index(r, f));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_tile_panics() {
        let _ = StructArray::new(10, 3).aos_to_asta(4);
    }
}
