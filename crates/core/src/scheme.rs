//! Total, deterministic transposition-scheme selection.
//!
//! [`decide_scheme`] classifies **every** `rows × cols` shape into an
//! executable scheme — it never panics and never silently degrades. This
//! fixes two planning bugs inherited from the paper's §7.4 heuristic:
//!
//! * **Degenerate shapes.** `1 × n`, `m × 1` and `n × n` used to take the
//!   full 3-stage path (the heuristic happily returns a `(1, d)` tile for a
//!   row vector). A row/column vector is already its own transpose in
//!   memory — the correct plan is the in-memory identity — and a square
//!   matrix wants the pairwise-swap / square-tiled path whose cycles all
//!   have length ≤ 2.
//! * **Prime / non-factorable dims.** When [`TileHeuristic::select`] returns
//!   `None` (e.g. `7919 × 104_729`, both prime), the old
//!   [`crate::full::plan_auto`] silently fell back to the single-stage pass
//!   with no record of why. The decision now carries a typed
//!   [`FallbackReason`] and prefers the deterministic alternatives first:
//!   the C2R three-pass decomposition when `gcd = 1` (strictly faster than
//!   the old coprime cycle-following route — see the `dominance`
//!   experiment), the always-legal `(c, c)` gcd sub-tile when
//!   `1 < c² ≤` [`GCD_TILE_MAX_LEN`] (staged degradation), and the C2R
//!   decomposition again — never the single-stage whole-matrix chase — when
//!   the gcd tile is oversized. [`Scheme::Coprime`] and
//!   [`Scheme::SingleStage`] remain addressable as explicit rival schemes
//!   (benchmarks, snapshots), but [`decide_scheme`] no longer routes any
//!   infeasible-tile shape to them.

use crate::numtheory::gcd;
use crate::stages::{StagePlan, TileConfig};
use crate::tiles::{usize_divisors, TileHeuristic};

/// Largest `c × c` gcd tile the staged algorithm will attempt: beyond this
/// the stage-2 flag array exceeds the local-memory budget (~393k bits), see
/// [`crate::full::route_for`].
pub const GCD_TILE_MAX_LEN: usize = 262_144;

/// How a shape will be transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// `rows ≤ 1` or `cols ≤ 1`: the storage already equals its transpose —
    /// nothing moves.
    Identity,
    /// `rows == cols`: pairwise swaps (host) or the BS-tiled square path
    /// (GPU); every transposition cycle has length ≤ 2.
    SquareTiled,
    /// The paper's staged algorithm with a heuristic §7.4 tile.
    Staged,
    /// Staged algorithm with the always-legal `(c, c)` tile, `c = gcd`.
    GcdTiled,
    /// Coprime dimensions: the two-phase row-scramble/column-shuffle
    /// decomposition (after Catanzaro et al.). Kept as an explicit rival
    /// scheme; the planner now prefers [`Scheme::C2R`], which generalizes
    /// it to every shape.
    Coprime,
    /// The full C2R/R2C decomposition (Catanzaro, Keller & Garland, PPoPP
    /// 2014): column rotate → row shuffle → column shuffle. Total over all
    /// shapes, no claim flags, no atomics, perfect load balance — the
    /// planner's choice for every infeasible-tile shape that the gcd tile
    /// cannot cover.
    C2R,
    /// Conservative whole-matrix cycle-following pass.
    SingleStage,
}

impl Scheme {
    /// Stable display / provenance name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Identity => "identity",
            Self::SquareTiled => "square-tiled",
            Self::Staged => "staged",
            Self::GcdTiled => "gcd-tiled",
            Self::Coprime => "coprime",
            Self::C2R => "c2r",
            Self::SingleStage => "single-stage",
        }
    }

    /// Inverse of [`Scheme::name`] — used when deserializing archived
    /// provenance (plan-cache snapshots). `None` for unknown names.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "identity" => Some(Self::Identity),
            "square-tiled" => Some(Self::SquareTiled),
            "staged" => Some(Self::Staged),
            "gcd-tiled" => Some(Self::GcdTiled),
            "coprime" => Some(Self::Coprime),
            "c2r" => Some(Self::C2R),
            "single-stage" => Some(Self::SingleStage),
            _ => None,
        }
    }
}

/// Why [`decide_scheme`] picked the scheme it did — recorded provenance, so
/// a fallback is never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The scheme is the first-choice plan for this shape, not a fallback.
    Preferred,
    /// `rows * cols ≤ 1`: nothing to transpose.
    TrivialMatrix,
    /// `rows == 1`: a row vector is its own transpose in memory.
    DegenerateRow,
    /// `cols == 1`: a column vector is its own transpose in memory.
    DegenerateCol,
    /// `rows == cols`: the square short-circuit applies.
    SquareShape,
    /// [`TileHeuristic::select`] found no feasible tile for this shape
    /// (the paper's prime-dimension limitation, §7.4).
    NoFeasibleTile {
        /// The untileable row count.
        rows: usize,
        /// The untileable column count.
        cols: usize,
    },
}

impl FallbackReason {
    /// Human-readable explanation for logs and reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::Preferred => "preferred scheme for this shape".to_string(),
            Self::TrivialMatrix => "trivial matrix (at most one element)".to_string(),
            Self::DegenerateRow => "row vector: transpose is the in-memory identity".to_string(),
            Self::DegenerateCol => {
                "column vector: transpose is the in-memory identity".to_string()
            }
            Self::SquareShape => "square matrix: all cycles have length <= 2".to_string(),
            Self::NoFeasibleTile { rows, cols } => {
                format!("no feasible heuristic tile for {rows}x{cols} (section 7.4 limitation)")
            }
        }
    }

    /// Did the planner deviate from the shape's first-choice staged plan?
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        !matches!(self, Self::Preferred)
    }
}

/// The complete, typed planning decision for one shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanDecision {
    /// Selected scheme.
    pub scheme: Scheme,
    /// Why — [`FallbackReason::Preferred`] unless a short-circuit or
    /// fallback fired.
    pub reason: FallbackReason,
    /// The tile backing a staged scheme, when one exists.
    pub tile: Option<TileConfig>,
}

impl PlanDecision {
    /// The staged plan realising this decision, or `None` for schemes that
    /// execute outside the staged machinery ([`Scheme::Identity`],
    /// [`Scheme::Coprime`], [`Scheme::C2R`]). Never panics: a square or
    /// tiled scheme whose tile is unavailable degrades to the single-stage
    /// plan.
    #[must_use]
    pub fn staged_plan(&self, rows: usize, cols: usize) -> Option<StagePlan> {
        match self.scheme {
            Scheme::Identity | Scheme::Coprime | Scheme::C2R => None,
            Scheme::Staged | Scheme::GcdTiled | Scheme::SquareTiled => match self.tile {
                Some(t) => Some(
                    StagePlan::three_stage(rows, cols, t)
                        .unwrap_or_else(|_| StagePlan::single_stage(rows, cols)),
                ),
                None => Some(StagePlan::single_stage(rows, cols)),
            },
            Scheme::SingleStage => Some(StagePlan::single_stage(rows, cols)),
        }
    }
}

/// Best square tile edge for an `n × n` matrix: the divisor `t > 1` of `n`
/// whose `t × t` tile fits in shared memory, preferring the heuristic's
/// `[preferred_lo, preferred_hi]` band and larger edges among equals.
/// `None` when `n` has no such divisor (large prime edge).
#[must_use]
pub fn square_tile(n: usize, heuristic: &TileHeuristic) -> Option<TileConfig> {
    let mut best: Option<TileConfig> = None;
    for t in usize_divisors(n) {
        if t <= 1 {
            continue;
        }
        let cand = TileConfig::new(t, t);
        if !heuristic.feasible(cand) {
            continue;
        }
        match best {
            None => best = Some(cand),
            Some(b) => {
                if heuristic.badness(cand) < heuristic.badness(b) {
                    best = Some(cand);
                }
            }
        }
    }
    best
}

/// Classify a shape. Total and deterministic: every `(rows, cols)` —
/// including zero, degenerate, square, prime and otherwise non-factorable
/// shapes — maps to an executable scheme with a typed reason. Never panics.
#[must_use]
pub fn decide_scheme(rows: usize, cols: usize, heuristic: &TileHeuristic) -> PlanDecision {
    if rows == 0 || cols == 0 || (rows == 1 && cols == 1) {
        return PlanDecision {
            scheme: Scheme::Identity,
            reason: FallbackReason::TrivialMatrix,
            tile: None,
        };
    }
    if rows <= 1 {
        return PlanDecision {
            scheme: Scheme::Identity,
            reason: FallbackReason::DegenerateRow,
            tile: None,
        };
    }
    if cols <= 1 {
        return PlanDecision {
            scheme: Scheme::Identity,
            reason: FallbackReason::DegenerateCol,
            tile: None,
        };
    }
    if rows == cols {
        return PlanDecision {
            scheme: Scheme::SquareTiled,
            reason: FallbackReason::SquareShape,
            tile: square_tile(rows, heuristic),
        };
    }
    if let Some(tile) = heuristic.select(rows, cols) {
        return PlanDecision {
            scheme: Scheme::Staged,
            reason: FallbackReason::Preferred,
            tile: Some(tile),
        };
    }
    // No heuristic tile: deterministic fallback chain with a recorded
    // reason. Coprime shapes (gcd = 1) take the C2R decomposition — never
    // the old coprime cycle-following route (its c = 1 slice, but with the
    // slower unbatched kernels). Non-coprime shapes degrade through the
    // staged machinery first: the (c, c) gcd tile keeps the tuned staged
    // kernels in play. Only when that tile is oversized does the shape go
    // to C2R — the single-stage whole-matrix chase is no longer reachable
    // from this branch.
    let reason = FallbackReason::NoFeasibleTile { rows, cols };
    let c = gcd(rows as u64, cols as u64) as usize;
    if c > 1 && c * c <= GCD_TILE_MAX_LEN {
        return PlanDecision {
            scheme: Scheme::GcdTiled,
            reason,
            tile: Some(TileConfig::new(c, c)),
        };
    }
    PlanDecision { scheme: Scheme::C2R, reason, tile: None }
}

/// Transpose a square `n × n` matrix in place by pairwise swaps, blocked for
/// cache locality. The square short-circuit behind [`Scheme::SquareTiled`]
/// on the host: `O(n²)` swaps, no staging, no scratch.
pub fn transpose_square_in_place<T>(data: &mut [T], n: usize) {
    assert_eq!(
        data.len() as u128,
        (n as u128) * (n as u128),
        "square transpose needs exactly n*n elements"
    );
    const B: usize = 32;
    let mut bi = 0;
    while bi < n {
        let mut bj = bi;
        while bj < n {
            for i in bi..(bi + B).min(n) {
                let j0 = if bi == bj { i + 1 } else { bj };
                for j in j0..(bj + B).min(n) {
                    data.swap(i * n + j, j * n + i);
                }
            }
            bj += B;
        }
        bi += B;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn degenerate_shapes_short_circuit() {
        let h = TileHeuristic::default();
        let d = decide_scheme(1, 999, &h);
        assert_eq!(d.scheme, Scheme::Identity);
        assert_eq!(d.reason, FallbackReason::DegenerateRow);
        assert!(d.staged_plan(1, 999).is_none());

        let d = decide_scheme(512, 1, &h);
        assert_eq!(d.scheme, Scheme::Identity);
        assert_eq!(d.reason, FallbackReason::DegenerateCol);

        let d = decide_scheme(1, 1, &h);
        assert_eq!(d.reason, FallbackReason::TrivialMatrix);
        let d = decide_scheme(0, 7, &h);
        assert_eq!(d.scheme, Scheme::Identity);
        assert_eq!(d.reason, FallbackReason::TrivialMatrix);
    }

    #[test]
    fn square_shapes_take_the_square_path() {
        let h = TileHeuristic::default();
        let d = decide_scheme(60, 60, &h);
        assert_eq!(d.scheme, Scheme::SquareTiled);
        assert_eq!(d.reason, FallbackReason::SquareShape);
        assert_eq!(d.tile, Some(TileConfig::new(60, 60)));

        // 47 is prime but 47² = 2209 fits shared memory → full-edge tile.
        let d = decide_scheme(47, 47, &h);
        assert_eq!(d.tile, Some(TileConfig::new(47, 47)));

        // 61 is prime and 61² = 3721 exceeds the 3600-word budget → no tile,
        // but the decision is still typed and the plan degrades cleanly.
        let d = decide_scheme(61, 61, &h);
        assert_eq!(d.scheme, Scheme::SquareTiled);
        assert_eq!(d.tile, None);
        assert_eq!(d.staged_plan(61, 61).unwrap().name, "single-stage");
    }

    #[test]
    fn paper_class_prime_shape_gets_typed_c2r_fallback() {
        let h = TileHeuristic::default();
        // The exact shape from the issue: both dims prime, no feasible tile.
        let d = decide_scheme(7919, 104_729, &h);
        assert_eq!(d.scheme, Scheme::C2R);
        assert_eq!(d.reason, FallbackReason::NoFeasibleTile { rows: 7919, cols: 104_729 });
        assert!(d.reason.is_fallback());
        assert!(d.reason.describe().contains("7919x104729"));
        assert!(d.staged_plan(7919, 104_729).is_none(), "C2R executes outside staging");
    }

    #[test]
    fn no_infeasible_tile_shape_resolves_to_coprime_or_single_stage() {
        // Regression for the prime-shape slow path: sweep shapes on both
        // sides of the gcd split and assert the NoFeasibleTile branch never
        // lands on the coprime cycle-following route or the single-stage
        // chase anymore.
        let h = TileHeuristic::default();
        for (r, c) in [
            (7919usize, 104_729usize), // gcd 1, both prime
            (127, 61),                 // gcd 1, small primes
            (1009, 4096),              // gcd 1, prime × power of two
            (61 * 67, 61 * 71),        // gcd 61 → staged degradation
        ] {
            let d = decide_scheme(r, c, &h);
            if !matches!(d.reason, FallbackReason::NoFeasibleTile { .. }) {
                continue; // heuristic found a tile; nothing to regress
            }
            assert_ne!(d.scheme, Scheme::Coprime, "{r}x{c} took the slow coprime path");
            assert_ne!(d.scheme, Scheme::SingleStage, "{r}x{c} took the single-stage chase");
        }
    }

    #[test]
    fn non_coprime_infeasible_shapes_stay_staged() {
        // Satellite regression: the gcd > 1 side of the split must take the
        // staged-degradation path (gcd tile), not a non-staged scheme.
        let h = TileHeuristic::default();
        let (r, c) = (61 * 67, 61 * 71);
        let d = decide_scheme(r, c, &h);
        assert!(matches!(d.reason, FallbackReason::NoFeasibleTile { .. }));
        assert_eq!(d.scheme, Scheme::GcdTiled);
        assert_eq!(d.tile, Some(TileConfig::new(61, 61)));
        assert_eq!(d.staged_plan(r, c).unwrap().name, "3-stage");
    }

    #[test]
    fn gcd_tile_fallback_is_deterministic() {
        let h = TileHeuristic::default();
        // 61·67 × 61·71: every divisor pair exceeds the 3600-word budget
        // (the smallest is 61·61 = 3721), so select() fails; gcd 61 → the
        // always-legal (61, 61) sub-tile.
        let (r, c) = (61 * 67, 61 * 71);
        let d = decide_scheme(r, c, &h);
        assert_eq!(d.scheme, Scheme::GcdTiled);
        assert_eq!(d.tile, Some(TileConfig::new(61, 61)));
        assert!(matches!(d.reason, FallbackReason::NoFeasibleTile { .. }));
        // Same inputs → same decision, always.
        assert_eq!(d, decide_scheme(r, c, &h));
    }

    #[test]
    fn oversized_gcd_falls_back_to_c2r() {
        // Starve the heuristic so select() fails, with gcd 1024 → c² > 262144:
        // the gcd tile is oversized, and the shape goes to the total C2R
        // decomposition instead of the old single-stage chase.
        let h = TileHeuristic { shared_capacity_words: 1, ..Default::default() };
        let d = decide_scheme(1024 * 3, 1024 * 5, &h);
        assert_eq!(d.scheme, Scheme::C2R);
        assert!(matches!(d.reason, FallbackReason::NoFeasibleTile { .. }));
        assert!(d.staged_plan(1024 * 3, 1024 * 5).is_none());
    }

    #[test]
    fn preferred_staged_shapes_are_not_fallbacks() {
        let h = TileHeuristic::default();
        let d = decide_scheme(720, 180, &h);
        assert_eq!(d.scheme, Scheme::Staged);
        assert_eq!(d.reason, FallbackReason::Preferred);
        assert!(!d.reason.is_fallback());
        assert!(d.tile.is_some());
        assert_eq!(d.staged_plan(720, 180).unwrap().name, "3-stage");
    }

    #[test]
    fn square_swap_matches_reference() {
        for n in [1usize, 2, 3, 31, 32, 33, 61, 100] {
            let m = Matrix::iota(n, n);
            let mut data = m.as_slice().to_vec();
            transpose_square_in_place(&mut data, n);
            assert_eq!(&data, m.transposed().as_slice(), "n = {n}");
        }
    }

    #[test]
    fn scheme_names_are_stable() {
        assert_eq!(Scheme::Identity.name(), "identity");
        assert_eq!(Scheme::SquareTiled.name(), "square-tiled");
        assert_eq!(Scheme::Staged.name(), "staged");
        assert_eq!(Scheme::GcdTiled.name(), "gcd-tiled");
        assert_eq!(Scheme::Coprime.name(), "coprime");
        assert_eq!(Scheme::C2R.name(), "c2r");
        assert_eq!(Scheme::SingleStage.name(), "single-stage");
        for s in [
            Scheme::Identity,
            Scheme::SquareTiled,
            Scheme::Staged,
            Scheme::GcdTiled,
            Scheme::Coprime,
            Scheme::C2R,
            Scheme::SingleStage,
        ] {
            assert_eq!(Scheme::by_name(s.name()), Some(s), "{} round-trips", s.name());
        }
    }
}
