//! Stage plans: full transposition as a sequence of elementary
//! transpositions (§4.1 and §4.2 of the paper).
//!
//! Given `M = M′·m` and `N = N′·n`, the matrix is viewed as the 4-D array
//! `M′ × m × N′ × n` and a plan is a sequence of adjacent-dimension swaps
//! (named by their factorial codes) whose composition is the full
//! transposition `N′ × n × M′ × m`.
//!
//! * **4-stage (Gustavson/Karlsson)**: `0100! → 0010! → 1000! → 0100!`
//! * **4-stage fused**: `0100! → fused(0010!+1000!) → 0100!`
//! * **3-stage (the paper's contribution)**: `100! → 0010! → 0100!`
//! * **single-stage**: one whole-matrix cycle-following pass (baseline)
//!
//! Each plan is *data-free*: it records the [`StageOp`]s and their factorial
//! codes; execution (sequential/parallel/GPU) is layered on top.

use crate::elementary::{FusedTileTranspose, InstancedTranspose};
use crate::perm::cycle::TransposePerm;
use crate::perm::factorial::FactorialCode;

/// The tiling `(m, n)` of an `M × N` matrix: `M = M′·m`, `N = N′·n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileConfig {
    /// Tile height (divides M).
    pub m: usize,
    /// Tile width (divides N).
    pub n: usize,
}

impl TileConfig {
    /// Construct a tile configuration.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        assert!(m > 0 && n > 0);
        Self { m, n }
    }

    /// Words (scalars) in one `m × n` tile.
    #[must_use]
    pub fn tile_len(&self) -> usize {
        self.m * self.n
    }

    /// Validate against matrix dimensions; returns `(M′, N′)`.
    ///
    /// # Errors
    /// Returns a description of the violated divisibility constraint.
    pub fn factors_of(&self, rows: usize, cols: usize) -> Result<(usize, usize), PlanError> {
        if !rows.is_multiple_of(self.m) {
            return Err(PlanError::TileDoesNotDivide { dim: 'M', size: rows, tile: self.m });
        }
        if !cols.is_multiple_of(self.n) {
            return Err(PlanError::TileDoesNotDivide { dim: 'N', size: cols, tile: self.n });
        }
        Ok((rows / self.m, cols / self.n))
    }
}

/// Why a stage plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The tile dimension does not divide the matrix dimension.
    TileDoesNotDivide {
        /// Which matrix dimension (`'M'` or `'N'`).
        dim: char,
        /// The matrix dimension value.
        size: usize,
        /// The offending tile size.
        tile: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::TileDoesNotDivide { dim, size, tile } => {
                write!(f, "tile size {tile} does not divide {dim} = {size}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One elementary operation of a stage plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOp {
    /// A unified instanced tiled transposition.
    Instanced(InstancedTranspose),
    /// The fused 0010!+1000! composite of the 4-stage algorithm.
    Fused(FusedTileTranspose),
}

impl StageOp {
    /// Total scalars this op acts on.
    #[must_use]
    pub fn total_len(&self) -> usize {
        match self {
            StageOp::Instanced(op) => op.total_len(),
            StageOp::Fused(op) => {
                use crate::elementary::IndexPerm;
                op.len()
            }
        }
    }

    /// Global scalar destination map (for plan verification).
    #[must_use]
    pub fn dest_scalar(&self, k: usize) -> usize {
        match self {
            StageOp::Instanced(op) => op.dest_scalar(k),
            StageOp::Fused(op) => {
                use crate::elementary::IndexPerm;
                op.dest(k)
            }
        }
    }

    /// Execute sequentially in place.
    pub fn apply_seq<T: Copy>(&self, data: &mut [T]) {
        match self {
            StageOp::Instanced(op) => op.apply_seq(data),
            StageOp::Fused(op) => op.apply_seq(data),
        }
    }

    /// Execute with rayon in place.
    pub fn apply_par<T: Copy + Send + Sync>(&self, data: &mut [T]) {
        match self {
            StageOp::Instanced(op) => op.apply_par(data),
            StageOp::Fused(op) => op.apply_par(data),
        }
    }
}

/// One stage: the elementary op plus its factorial-code name and a
/// human-readable shape annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Factorial code of the dimension swap this stage performs.
    pub code: FactorialCode,
    /// The operation.
    pub op: StageOp,
    /// `"M′×m×N′×n → M′×N′×m×n"`-style annotation for logs and docs.
    pub describe: String,
}

/// A complete plan: metadata plus the ordered stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// Source matrix rows (M).
    pub rows: usize,
    /// Source matrix cols (N).
    pub cols: usize,
    /// The tiling used (meaningless for the single-stage plan, where it is
    /// recorded as `(M, N)`).
    pub tile: TileConfig,
    /// Plan family name (`"3-stage"`, `"4-stage"`, …).
    pub name: &'static str,
    /// Ordered elementary stages.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// The paper's 3-stage plan (§4.2): `100! → 0010! → 0100!`.
    ///
    /// # Errors
    /// Fails if `tile.m ∤ rows` or `tile.n ∤ cols`.
    pub fn three_stage(rows: usize, cols: usize, tile: TileConfig) -> Result<Self, PlanError> {
        let (mp, np) = tile.factors_of(rows, cols)?;
        let (m, n) = (tile.m, tile.n);
        let stages = vec![
            Stage {
                code: FactorialCode::parse("100"),
                op: StageOp::Instanced(InstancedTranspose::new(1, rows, np, n)),
                describe: format!("M×N′×n → N′×M×n  ({rows}×{np}×{n}, super={n})"),
            },
            Stage {
                code: FactorialCode::parse("0010"),
                op: StageOp::Instanced(InstancedTranspose::new(np * mp, m, n, 1)),
                describe: format!("N′×M′×m×n → N′×M′×n×m  ({np}·{mp} tiles of {m}×{n})"),
            },
            Stage {
                code: FactorialCode::parse("0100"),
                op: StageOp::Instanced(InstancedTranspose::new(np, mp, n, m)),
                describe: format!("N′×M′×n×m → N′×n×M′×m  ({np} inst of {mp}×{n}, super={m})"),
            },
        ];
        Ok(Self { rows, cols, tile, name: "3-stage", stages })
    }

    /// The Gustavson/Karlsson 4-stage plan (§4.1, Figure 2):
    /// `0100! → 0010! → 1000! → 0100!`.
    ///
    /// # Errors
    /// Fails if `tile.m ∤ rows` or `tile.n ∤ cols`.
    pub fn four_stage(rows: usize, cols: usize, tile: TileConfig) -> Result<Self, PlanError> {
        let (mp, np) = tile.factors_of(rows, cols)?;
        let (m, n) = (tile.m, tile.n);
        let stages = vec![
            Stage {
                code: FactorialCode::parse("0100"),
                op: StageOp::Instanced(InstancedTranspose::new(mp, m, np, n)),
                describe: format!("M′×m×N′×n → M′×N′×m×n  ({mp} inst of {m}×{np}, super={n})"),
            },
            Stage {
                code: FactorialCode::parse("0010"),
                op: StageOp::Instanced(InstancedTranspose::new(mp * np, m, n, 1)),
                describe: format!("M′×N′×m×n → M′×N′×n×m  ({mp}·{np} tiles of {m}×{n})"),
            },
            Stage {
                code: FactorialCode::parse("1000"),
                op: StageOp::Instanced(InstancedTranspose::new(1, mp, np, m * n)),
                describe: format!("M′×N′×n×m → N′×M′×n×m  ({mp}×{np}, super={})", m * n),
            },
            Stage {
                code: FactorialCode::parse("0100"),
                op: StageOp::Instanced(InstancedTranspose::new(np, mp, n, m)),
                describe: format!("N′×M′×n×m → N′×n×M′×m  ({np} inst of {mp}×{n}, super={m})"),
            },
        ];
        Ok(Self { rows, cols, tile, name: "4-stage", stages })
    }

    /// The 4-stage plan with stages 2–3 fused (Karlsson/Gustavson fusion,
    /// noted in §7.3): `0100! → fused → 0100!`.
    ///
    /// # Errors
    /// Fails if `tile.m ∤ rows` or `tile.n ∤ cols`.
    pub fn four_stage_fused(rows: usize, cols: usize, tile: TileConfig) -> Result<Self, PlanError> {
        let (mp, np) = tile.factors_of(rows, cols)?;
        let (m, n) = (tile.m, tile.n);
        let stages = vec![
            Stage {
                code: FactorialCode::parse("0100"),
                op: StageOp::Instanced(InstancedTranspose::new(mp, m, np, n)),
                describe: format!("M′×m×N′×n → M′×N′×m×n  ({mp} inst of {m}×{np}, super={n})"),
            },
            Stage {
                // Composition of 0010! then 1000!.
                code: FactorialCode::parse("0010").then(&FactorialCode::parse("1000")),
                op: StageOp::Fused(FusedTileTranspose::new(mp, np, m, n)),
                describe: format!("M′×N′×m×n → N′×M′×n×m  (fused, {mp}×{np} tiles of {m}×{n})"),
            },
            Stage {
                code: FactorialCode::parse("0100"),
                op: StageOp::Instanced(InstancedTranspose::new(np, mp, n, m)),
                describe: format!("N′×M′×n×m → N′×n×M′×m  ({np} inst of {mp}×{n}, super={m})"),
            },
        ];
        Ok(Self { rows, cols, tile, name: "4-stage-fused", stages })
    }

    /// Single whole-matrix cycle-following pass (the locality-poor baseline
    /// of §4.1; also the fallback when no usable tiling exists, e.g. prime
    /// dimensions).
    #[must_use]
    pub fn single_stage(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            tile: TileConfig::new(rows, cols),
            name: "single-stage",
            stages: vec![Stage {
                code: FactorialCode::parse("10"),
                op: StageOp::Instanced(InstancedTranspose::new(1, rows, cols, 1)),
                describe: format!("M×N → N×M  (one pass, {rows}×{cols})"),
            }],
        }
    }

    /// Total scalars in the matrix.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.rows * self.cols
    }

    /// Execute all stages sequentially in place.
    ///
    /// # Panics
    /// Panics if `data.len() != rows*cols`.
    pub fn execute_seq<T: Copy>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.total_len(), "matrix size mismatch");
        for stage in &self.stages {
            stage.op.apply_seq(data);
        }
    }

    /// Execute all stages with rayon in place.
    ///
    /// # Panics
    /// Panics if `data.len() != rows*cols`.
    pub fn execute_par<T: Copy + Send + Sync>(&self, data: &mut [T]) {
        assert_eq!(data.len(), self.total_len(), "matrix size mismatch");
        for stage in &self.stages {
            stage.op.apply_par(data);
        }
    }

    /// Compose the per-stage scalar index maps into the plan's end-to-end
    /// permutation table: `table[k]` = final offset of the scalar initially
    /// at `k`. Must equal [`TransposePerm::to_table`] — the key correctness
    /// property of any plan. O(len · stages); for tests and verification.
    #[must_use]
    pub fn composed_table(&self) -> Vec<usize> {
        let n = self.total_len();
        (0..n)
            .map(|k0| self.stages.iter().fold(k0, |k, s| s.op.dest_scalar(k)))
            .collect()
    }

    /// Verify the plan against the definitional transposition permutation.
    #[must_use]
    pub fn verify(&self) -> bool {
        let want = TransposePerm::new(self.rows, self.cols);
        self.composed_table()
            .iter()
            .enumerate()
            .all(|(k, &d)| d == want.dest(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    const SHAPES: &[(usize, usize, usize, usize)] = &[
        // (M, N, m, n)
        (6, 6, 2, 3),
        (6, 15, 3, 5),
        (15, 6, 5, 3),
        (8, 12, 4, 4),
        (12, 8, 2, 2),
        (20, 9, 5, 3),
        (9, 20, 3, 4),
        (4, 4, 4, 4),   // tile == matrix
        (4, 4, 1, 1),   // degenerate tiles
        (30, 42, 6, 7),
    ];

    fn plans(m_rows: usize, n_cols: usize, tm: usize, tn: usize) -> Vec<StagePlan> {
        let tile = TileConfig::new(tm, tn);
        vec![
            StagePlan::three_stage(m_rows, n_cols, tile).unwrap(),
            StagePlan::four_stage(m_rows, n_cols, tile).unwrap(),
            StagePlan::four_stage_fused(m_rows, n_cols, tile).unwrap(),
            StagePlan::single_stage(m_rows, n_cols),
        ]
    }

    #[test]
    fn all_plans_compose_to_full_transposition() {
        for &(mm, nn, tm, tn) in SHAPES {
            for plan in plans(mm, nn, tm, tn) {
                assert!(plan.verify(), "{} on {mm}x{nn} tile ({tm},{tn})", plan.name);
            }
        }
    }

    #[test]
    fn all_plans_execute_to_transposed_data() {
        for &(mm, nn, tm, tn) in SHAPES {
            let mat = Matrix::iota(mm, nn);
            let want = mat.transposed().into_vec();
            for plan in plans(mm, nn, tm, tn) {
                let mut seq = mat.as_slice().to_vec();
                plan.execute_seq(&mut seq);
                assert_eq!(seq, want, "{} seq on {mm}x{nn} tile ({tm},{tn})", plan.name);
                let mut par = mat.as_slice().to_vec();
                plan.execute_par(&mut par);
                assert_eq!(par, want, "{} par on {mm}x{nn} tile ({tm},{tn})", plan.name);
            }
        }
    }

    #[test]
    fn stage_counts() {
        let tile = TileConfig::new(2, 3);
        assert_eq!(StagePlan::three_stage(6, 6, tile).unwrap().stages.len(), 3);
        assert_eq!(StagePlan::four_stage(6, 6, tile).unwrap().stages.len(), 4);
        assert_eq!(StagePlan::four_stage_fused(6, 6, tile).unwrap().stages.len(), 3);
        assert_eq!(StagePlan::single_stage(6, 6).stages.len(), 1);
    }

    #[test]
    fn invalid_tile_rejected() {
        let err = StagePlan::three_stage(6, 6, TileConfig::new(4, 3)).unwrap_err();
        assert_eq!(err, PlanError::TileDoesNotDivide { dim: 'M', size: 6, tile: 4 });
        let err = StagePlan::four_stage(6, 7, TileConfig::new(2, 3)).unwrap_err();
        assert_eq!(err, PlanError::TileDoesNotDivide { dim: 'N', size: 7, tile: 3 });
        assert_eq!(err.to_string(), "tile size 3 does not divide N = 7");
    }

    #[test]
    fn factorial_codes_match_paper() {
        let tile = TileConfig::new(2, 3);
        let p3 = StagePlan::three_stage(6, 6, tile).unwrap();
        let codes: Vec<String> = p3.stages.iter().map(|s| s.code.to_string()).collect();
        assert_eq!(codes, vec!["100!", "0010!", "0100!"]);
        let p4 = StagePlan::four_stage(6, 6, tile).unwrap();
        let codes: Vec<String> = p4.stages.iter().map(|s| s.code.to_string()).collect();
        assert_eq!(codes, vec!["0100!", "0010!", "1000!", "0100!"]);
    }

    #[test]
    fn fused_equals_unfused() {
        let tile = TileConfig::new(3, 5);
        let mat = Matrix::iota(6, 15);
        let mut a = mat.as_slice().to_vec();
        let mut b = a.clone();
        StagePlan::four_stage(6, 15, tile).unwrap().execute_seq(&mut a);
        StagePlan::four_stage_fused(6, 15, tile).unwrap().execute_seq(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn float_payload() {
        let mat = Matrix::pattern_f32(20, 9);
        let want = mat.transposed().into_vec();
        let plan = StagePlan::three_stage(20, 9, TileConfig::new(5, 3)).unwrap();
        let mut data = mat.as_slice().to_vec();
        plan.execute_seq(&mut data);
        assert_eq!(data, want);
    }
}
