//! Offline shim for [rayon](https://docs.rs/rayon): the subset of the
//! parallel-iterator API this workspace uses, executed **sequentially**.
//!
//! The workspace builds in environments with no registry access, so the
//! real rayon cannot be downloaded. Call sites are written against rayon's
//! API (`par_iter`, `par_chunks_exact_mut`, `into_par_iter`, `for_each_init`,
//! `current_num_threads`); this shim satisfies them with plain `Iterator`
//! delegation. Results are identical — the algorithms in this workspace are
//! deterministic and order-independent — only wall-clock parallel speedup is
//! lost. Point `Cargo.toml` back at the registry crate to restore it.

use std::ops::Range;

/// Threads in the (sequential) shim pool: always 1, truthfully reported so
/// benchmark labels do not overstate CPU rows.
#[must_use]
pub fn current_num_threads() -> usize {
    1
}

/// A "parallel" iterator: a newtype over a standard iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// As [`Iterator::map`].
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// As [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// As [`Iterator::for_each`].
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// rayon's `for_each_init`: one init value per "worker" — here a single
    /// sequential worker, so `init` runs once.
    pub fn for_each_init<T, INIT: FnMut() -> T, F: FnMut(&mut T, I::Item)>(
        self,
        mut init: INIT,
        mut f: F,
    ) {
        let mut state = init();
        self.0.for_each(|item| f(&mut state, item));
    }

    /// As [`Iterator::collect`].
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// As [`Iterator::filter`].
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// As [`Iterator::sum`].
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// Types convertible into a [`ParIter`] by value (rayon's
/// `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The underlying sequential iterator.
    type Iter: Iterator;
    /// Convert into the "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Range<usize>;
    fn into_par_iter(self) -> ParIter<Range<usize>> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Shared-reference parallel iteration over slices (rayon's
/// `IntoParallelRefIterator`, reachable as the inherent-looking
/// `.par_iter()`).
pub trait ParallelSlice<T> {
    /// As `[T]::iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// As `[T]::chunks`.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// Mutable parallel iteration over slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// As `[T]::iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// As `[T]::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// As `[T]::chunks_exact_mut`.
    fn par_chunks_exact_mut(&mut self, size: usize)
        -> ParIter<std::slice::ChunksExactMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
    fn par_chunks_exact_mut(
        &mut self,
        size: usize,
    ) -> ParIter<std::slice::ChunksExactMut<'_, T>> {
        ParIter(self.chunks_exact_mut(size))
    }
}

/// Run two closures "in parallel" (sequentially here), returning both
/// results — rayon's `join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The rayon prelude: every trait and function call sites expect.
pub mod prelude {
    pub use crate::{
        current_num_threads, join, IntoParallelIterator, ParIter, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = [1, 2, 3];
        let out: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn chunks_exact_mut_mutates() {
        let mut v = vec![0u32; 6];
        v.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| c.fill(i as u32));
        assert_eq!(v, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn for_each_init_shares_state() {
        let mut hits = Vec::new();
        (0..4).into_par_iter().for_each_init(Vec::new, |buf: &mut Vec<usize>, i| {
            buf.push(i);
            hits.push(buf.len());
        });
        assert_eq!(hits, vec![1, 2, 3, 4], "single sequential worker reuses init state");
    }
}
