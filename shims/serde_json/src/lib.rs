//! Offline shim for [serde_json](https://docs.rs/serde_json): renders the
//! serde shim's [`serde::Value`] tree as JSON text. Only the two entry
//! points the workspace uses (`to_string`, `to_string_pretty`) exist.

use serde::{Serialize, Value};

/// Serialization error (the shim's writer is infallible; the type exists
/// for signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
///
/// # Errors
/// Never fails in the shim; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON (two-space indentation, as the real crate).
///
/// # Errors
/// Never fails in the shim; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // serde_json errors on non-finite; archival output prefers
                // lossy-but-parseable null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |it, o, d| {
            write_value(it, indent, d, o);
        }),
        Value::Obj(entries) => {
            write_seq(entries.iter(), indent, depth, out, '{', '}', |(k, val), o, d| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            });
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        each(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        gbps: f64,
        hits: Vec<u32>,
    }

    #[test]
    fn compact_roundtrip_shape() {
        let r = Row { name: "a\"b".into(), gbps: 2.0, hits: vec![1, 2] };
        assert_eq!(
            to_string(&r).unwrap(),
            r#"{"name":"a\"b","gbps":2.0,"hits":[1,2]}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let r = Row { name: "x".into(), gbps: 1.5, hits: vec![] };
        let s = to_string_pretty(&r).unwrap();
        assert!(s.contains("\n  \"name\": \"x\""), "{s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn slices_of_structs() {
        let rows = vec![Row { name: "r".into(), gbps: 0.5, hits: vec![3] }];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n"), "{s}");
    }
}
