//! Offline shim for [serde_json](https://docs.rs/serde_json): renders the
//! serde shim's [`serde::Value`] tree as JSON text and parses JSON text
//! back into a [`serde::Value`] tree. Only the entry points the workspace
//! uses exist: `to_string`, `to_string_pretty`, and `from_str` (which
//! always targets `Value` — the regression harness navigates the tree with
//! the `Value` accessors instead of deserializing into structs).

use serde::{Serialize, Value};

/// Serialization error (the shim's writer is infallible; the type exists
/// for signature compatibility).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
///
/// # Errors
/// Never fails in the shim; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON (two-space indentation, as the real crate).
///
/// # Errors
/// Never fails in the shim; `Result` kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                // serde_json errors on non-finite; archival output prefers
                // lossy-but-parseable null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => write_seq(items.iter(), indent, depth, out, '[', ']', |it, o, d| {
            write_value(it, indent, d, o);
        }),
        Value::Obj(entries) => {
            write_seq(entries.iter(), indent, depth, out, '{', '}', |(k, val), o, d| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(val, indent, d, o);
            });
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        each(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

/// Parse JSON text into a [`Value`] tree.
///
/// Recursive-descent parser covering the full JSON grammar (objects,
/// arrays, strings with escapes, numbers, booleans, null). Numbers parse
/// to `UInt` / `Int` when integral and in range, `Float` otherwise —
/// mirroring how the serializer renders them.
///
/// # Errors
/// Returns `Err` on malformed input or trailing non-whitespace.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim's
                            // own writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error(format!("bad escape '\\{}'", esc as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().ok_or_else(|| Error("unterminated string".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        name: String,
        gbps: f64,
        hits: Vec<u32>,
    }

    #[test]
    fn compact_roundtrip_shape() {
        let r = Row { name: "a\"b".into(), gbps: 2.0, hits: vec![1, 2] };
        assert_eq!(
            to_string(&r).unwrap(),
            r#"{"name":"a\"b","gbps":2.0,"hits":[1,2]}"#
        );
    }

    #[test]
    fn pretty_indents() {
        let r = Row { name: "x".into(), gbps: 1.5, hits: vec![] };
        let s = to_string_pretty(&r).unwrap();
        assert!(s.contains("\n  \"name\": \"x\""), "{s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn slices_of_structs() {
        let rows = vec![Row { name: "r".into(), gbps: 0.5, hits: vec![3] }];
        let s = to_string_pretty(&rows).unwrap();
        assert!(s.starts_with("[\n"), "{s}");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let r = Row { name: "a\"b\n".into(), gbps: 2.5, hits: vec![1, 2, 3] };
        let compact = to_string(&r).unwrap();
        let pretty = to_string_pretty(&r).unwrap();
        let v1 = from_str(&compact).unwrap();
        let v2 = from_str(&pretty).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1.get("name").and_then(Value::as_str), Some("a\"b\n"));
        assert_eq!(v1.get("gbps").and_then(Value::as_f64), Some(2.5));
        assert_eq!(
            v1.get("hits").and_then(Value::as_array).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn parse_scalars_and_nesting() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("7").unwrap(), Value::UInt(7));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(from_str("{}").unwrap(), Value::Obj(vec![]));
        let v = from_str(r#"{"a": [{"b": 1.25}], "c": "A"}"#).unwrap();
        let inner = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(inner[0].get("b").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("A"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
    }
}
