//! Offline shim for [serde](https://docs.rs/serde): a self-describing value
//! tree plus a [`Serialize`] trait and derive macro.
//!
//! The workspace only ever serializes *to JSON for archival* (experiment row
//! structs in `ipt-bench`, report types in `gpu-sim`), so instead of serde's
//! visitor architecture this shim serializes into an owned [`Value`] tree
//! that `serde_json` (the sibling shim) renders. The derive macro supports
//! the two shapes the workspace uses: structs with named fields and enums
//! with unit variants.

// Let the derive macro's generated `::serde::` paths resolve when the
// derive is used inside this crate (its own tests).
extern crate self as serde;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// Signed integer (rendered without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Arr(Vec<Value>),
    /// Ordered key→value map (field order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` on non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries of an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// A non-negative integer payload.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Re-export of the derive macro: `#[derive(Serialize)]`.
pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(3)),
            ("b".into(), Value::Arr(vec![Value::Float(1.5), Value::Int(-2)])),
            ("s".into(), Value::Str("hi".into())),
            ("t".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(3.0));
        let arr = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.5));
        assert_eq!(arr[1].as_f64(), Some(-2.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_object().map(<[_]>::len), Some(4));
        assert_eq!(Value::Null.get("x"), None);
    }

    #[test]
    fn primitives() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_and_refs() {
        let v = vec![1u32, 2];
        assert_eq!(v.to_value(), Value::Arr(vec![Value::UInt(1), Value::UInt(2)]));
        let t = (&v, "x");
        assert_eq!(
            t.to_value(),
            Value::Arr(vec![v.to_value(), Value::Str("x".into())])
        );
    }

    #[test]
    fn derive_struct_and_unit_enum() {
        #[derive(Serialize)]
        struct Row {
            name: &'static str,
            gbps: f64,
            n: usize,
        }
        #[derive(Serialize)]
        enum Kind {
            Fast,
            #[allow(dead_code)]
            Slow,
        }
        let r = Row { name: "bs", gbps: 1.25, n: 7 };
        assert_eq!(
            r.to_value(),
            Value::Obj(vec![
                ("name".into(), Value::Str("bs".into())),
                ("gbps".into(), Value::Float(1.25)),
                ("n".into(), Value::UInt(7)),
            ])
        );
        assert_eq!(Kind::Fast.to_value(), Value::Str("Fast".into()));
    }
}
