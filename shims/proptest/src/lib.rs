//! Offline shim for [proptest](https://docs.rs/proptest): deterministic
//! random property testing with the API subset this workspace uses.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case index and the RNG
//!   seed; reruns are deterministic (seed = FNV of the test name), so the
//!   failure reproduces exactly.
//! * Strategies are samplers: `Strategy::sample` draws a value or returns
//!   `None` for a filtered-out draw (the runner resamples, with a cap).
//!
//! Supported surface: integer range strategies, `Just`, tuples (≤ 6),
//! `any::<bool>()`, `sample::select`, `prop_map`, `prop_flat_map`,
//! `prop_filter`, `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, and `ProptestConfig::with_cases`.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG (SplitMix64 — small, seedable, good enough for test
/// case generation).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw state.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Deterministic per-test seed: FNV-1a of the test name. Every run of
    /// the same test walks the same case sequence.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded draw (Lemire); bias is irrelevant for test
        // generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Outcome of one property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the draw does not count toward the budget.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. `sample` returns `None` when a filter rejected the
/// draw (the runner resamples).
pub trait Strategy: Sized {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }

    /// Discard values failing `pred` (`reason` shown when generation dries
    /// up).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F> {
        Filter { inner: self, reason, pred }
    }

    /// Box the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Sampler closure backing a [`BoxedStrategy`].
type SampleFn<T> = Box<dyn Fn(&mut TestRng) -> Option<T>>;

/// A type-erased strategy.
pub struct BoxedStrategy<T>(SampleFn<T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<O::Value> {
        let mid = self.inner.sample(rng)?;
        (self.f)(mid).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(&self.pred)
    }
}

/// Always the given value (like proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                Some(lo + rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.sample(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build it.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (like proptest's `any`).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// `any::<bool>()` support.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32);

/// Collection-based strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly select one of `options` (like proptest's `sample::select`).
    ///
    /// # Panics
    /// Panics at sampling time if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            assert!(!self.0.is_empty(), "sample::select on empty options");
            Some(self.0[rng.below(self.0.len() as u64) as usize].clone())
        }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::sample;
}

/// Everything call sites import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discard the current case unless `cond` holds (does not count toward the
/// case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Syntax matches proptest's:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in (0u32..4, 0u32..4)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($p:pat in $s:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut done: u32 = 0;
                let mut attempts: u64 = 0;
                while done < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= u64::from(cfg.cases) * 50 + 1000,
                        "proptest shim: {} rejected too many draws ({} attempts for {} cases)",
                        stringify!($name), attempts, cfg.cases
                    );
                    $(
                        let drawn = match $crate::Strategy::sample(&($s), &mut rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => continue,
                        };
                        let $p = drawn;
                    )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => done += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case failed: {} (case {} of {}): {}",
                            stringify!($name), done, cfg.cases, msg
                        ),
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3usize..17).sample(&mut rng).unwrap();
            assert!((3..17).contains(&v));
            let w = (5u32..=5).sample(&mut rng).unwrap();
            assert_eq!(w, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn combinators_compose(
            x in (1usize..=6).prop_map(|a| a * 2).prop_filter("even", |v| v % 2 == 0),
            (a, b) in (0u32..4, 0u32..4),
            flag in any::<bool>(),
            pick in prop::sample::select(vec![10usize, 20, 30]),
        ) {
            prop_assume!(a + b < 8 || flag);
            prop_assert!((2..=12).contains(&x));
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(pick % 10, 0);
            prop_assert_ne!(pick, 0);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = v;
            prop_assert!(i < n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_context() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
