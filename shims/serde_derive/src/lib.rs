//! Offline shim for serde's derive macro, written against `proc_macro`
//! directly (no registry access → no `syn`/`quote`).
//!
//! Supports exactly the item shapes this workspace derives `Serialize` on:
//!
//! * structs with named fields → a JSON object preserving field order,
//! * enums whose variants are all unit variants → the variant name as a
//!   JSON string (serde's default representation).
//!
//! Anything else (tuple structs, data-carrying enums, generic items) is an
//! explicit compile error rather than a silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim edition; see crate docs for coverage).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(code) => code.parse().expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("Serialize shim: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("Serialize shim: expected item name, got {other:?}")),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("Serialize shim: generic item {name} unsupported"))
            }
            Some(_) => i += 1,
            None => return Err(format!("Serialize shim: no body found on {name}")),
        }
    };

    if kind == "struct" {
        let fields = parse_named_fields(body)?;
        if fields.is_empty() {
            return Err(format!(
                "Serialize shim: {name} has no named fields (tuple/unit structs unsupported)"
            ));
        }
        let entries: Vec<String> = fields
            .iter()
            .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Obj(vec![{}])\n\
                 }}\n\
             }}",
            entries.join(", ")
        ))
    } else {
        let variants = parse_unit_variants(body, &name)?;
        if variants.is_empty() {
            return Err(format!("Serialize shim: enum {name} has no variants"));
        }
        let arms: Vec<String> = variants
            .iter()
            .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
            .collect();
        Ok(format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{ {} }}\n\
                 }}\n\
             }}",
            arms.join(", ")
        ))
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // optional `(crate)` etc.
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("Serialize shim: expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "Serialize shim: expected `:` after field {name}, got {other:?}"
                ))
            }
        }
        // Consume the type: everything up to a comma outside `<...>`.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("Serialize shim: expected variant, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "Serialize shim: {enum_name}::{name} is not a unit variant ({other:?}); \
                     only unit enums are supported"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}
