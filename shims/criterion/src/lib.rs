//! Offline shim for [criterion](https://docs.rs/criterion): the bench
//! targets compile and run against this, each benchmark executing a small
//! fixed number of timed iterations and printing mean wall-clock time.
//! There is no statistical analysis, warm-up, or HTML report — this shim
//! exists so `cargo bench` works offline and bench code stays honest
//! (compiled and exercised), not to produce publishable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per benchmark. Real criterion samples adaptively; the shim
/// keeps runs short and deterministic in count.
const ITERS: u32 = 3;

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Declared throughput of a benchmark (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How batched setup output is sized (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher;

impl Bencher {
    /// Time `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        report_elapsed(start.elapsed());
    }

    /// Time `routine` on fresh `setup()` output each iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        report_elapsed(measured);
    }
}

fn report_elapsed(total: Duration) {
    let mean = total / ITERS;
    println!("    time: {mean:?} (mean of {ITERS} iters)");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the per-benchmark sample count (accepted, ignored: the shim's
    /// iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare group throughput (printed alongside results).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark. Accepts a [`BenchmarkId`] or a plain string,
    /// like real criterion's `IntoBenchmarkId` bound.
    pub fn bench_function<ID: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        self.announce(&id.into());
        f(&mut Bencher);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.announce(&id);
        f(&mut Bencher, input);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}

    fn announce(&self, id: &BenchmarkId) {
        match self.throughput {
            Some(Throughput::Bytes(b)) => println!("{}/{id}  [{b} B/iter]", self.name),
            Some(Throughput::Elements(e)) => println!("{}/{id}  [{e} elems/iter]", self.name),
            None => println!("{}/{id}", self.name),
        }
    }
}

/// Top-level benchmark context (criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { name: name.to_string(), throughput: None }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        f(&mut Bencher);
        self
    }
}

/// Re-export of `std::hint::black_box` for call sites that import it from
/// criterion.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner (criterion's macro, minus
/// configuration arms the workspace doesn't use).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim-smoke");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        g.bench_function(BenchmarkId::new("iter", 1), |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with-input", "x"), &41, |b, &n| {
            b.iter(|| n + 1)
        });
        g.bench_function(BenchmarkId::new("batched", 2), |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
