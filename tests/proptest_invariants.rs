//! Property-based invariants over the whole stack (proptest).
//!
//! These are the structural guarantees of DESIGN.md §6: permutation
//! algebra, plan composition, in-place correctness of every execution
//! engine, and layout round-trips — over *arbitrary* shapes, not the
//! hand-picked ones in unit tests.

use ipt::core::elementary::parallel::{cycle_shift_par, find_cycle_leaders};
use ipt::core::elementary::{cycle_shift_oop, cycle_shift_seq, cycle_shift_seq_minimal};
use ipt::core::layout::StructArray;
use ipt::core::{
    transpose_in_place_par, Algorithm, InstancedTranspose, Matrix, StagePlan, TileConfig,
    TransposePerm,
};
use proptest::prelude::*;

/// A dimension with enough divisors to tile (product of small factors).
fn composite_dim() -> impl Strategy<Value = usize> {
    (1usize..=6, 1usize..=4, 1usize..=3)
        .prop_map(|(a, b, c)| 2usize.pow(a as u32 % 4 + 1) * 3usize.pow(b as u32 % 3) * c)
        .prop_filter("bounded", |&d| (4..=400).contains(&d))
}

/// A (rows, cols, tile) triple where the tile divides the matrix.
fn shape_and_tile() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (composite_dim(), composite_dim()).prop_flat_map(|(r, c)| {
        let rdivs: Vec<usize> = (1..=r).filter(|d| r % d == 0).collect();
        let cdivs: Vec<usize> = (1..=c).filter(|d| c % d == 0).collect();
        (Just(r), Just(c), proptest::sample::select(rdivs), proptest::sample::select(cdivs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dest_is_a_bijection_and_src_its_inverse(r in 1usize..60, c in 1usize..60) {
        let p = TransposePerm::new(r, c);
        let mut seen = vec![false; p.len()];
        for k in 0..p.len() {
            let d = p.dest(k);
            prop_assert!(!seen[d]);
            seen[d] = true;
            prop_assert_eq!(p.src(d), k);
        }
    }

    #[test]
    fn cycle_count_matches_enumeration(r in 1usize..40, c in 1usize..40) {
        let p = TransposePerm::new(r, c);
        let enumerated = find_cycle_leaders(&p).len() as u64 + p.stats().fixed_points;
        prop_assert_eq!(p.cycle_count(), enumerated);
    }

    #[test]
    fn cycle_lengths_partition_the_domain(r in 2usize..40, c in 2usize..40) {
        let p = TransposePerm::new(r, c);
        let moved: usize = find_cycle_leaders(&p).iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(moved as u64 + p.stats().fixed_points, (r * c) as u64);
        // Cate–Twigg: every cycle length divides the longest.
        let max = p.max_cycle_len() as usize;
        for (_, len) in find_cycle_leaders(&p) {
            prop_assert_eq!(max % len, 0);
        }
    }

    #[test]
    fn every_shift_engine_agrees_with_oop(
        (r, c) in (1usize..48, 1usize..48),
        s in 1usize..4,
    ) {
        let p = TransposePerm::new(r, c);
        let orig: Vec<u32> = (0..(r * c * s) as u32).collect();
        let mut want = vec![0u32; orig.len()];
        cycle_shift_oop(&orig, &mut want, &p, s);

        let mut a = orig.clone();
        cycle_shift_seq(&mut a, &p, s);
        prop_assert_eq!(&a, &want);

        let mut b = orig.clone();
        cycle_shift_seq_minimal(&mut b, &p, s);
        prop_assert_eq!(&b, &want);

        let mut d = orig.clone();
        cycle_shift_par(&mut d, &p, s);
        prop_assert_eq!(&d, &want);
    }

    #[test]
    fn all_plans_compose_and_execute((r, c, m, n) in shape_and_tile()) {
        let tile = TileConfig::new(m, n);
        let mat = Matrix::iota(r, c);
        let want = mat.transposed().into_vec();
        for plan in [
            StagePlan::three_stage(r, c, tile).unwrap(),
            StagePlan::four_stage(r, c, tile).unwrap(),
            StagePlan::four_stage_fused(r, c, tile).unwrap(),
        ] {
            prop_assert!(plan.verify(), "{} composition", plan.name);
            let mut data = mat.as_slice().to_vec();
            plan.execute_seq(&mut data);
            prop_assert_eq!(&data, &want);
        }
    }

    #[test]
    fn transpose_is_involutive(r in 1usize..80, c in 1usize..80) {
        let m = Matrix::pattern_f32(r, c);
        let t = transpose_in_place_par(m.clone(), Algorithm::ThreeStage);
        let back = transpose_in_place_par(t, Algorithm::ThreeStage);
        prop_assert_eq!(back, m);
    }

    #[test]
    fn instanced_inverse_roundtrip(
        i in 1usize..5, r in 1usize..12, c in 1usize..12, s in 1usize..4,
    ) {
        let op = InstancedTranspose::new(i, r, c, s);
        let orig: Vec<u32> = (0..op.total_len() as u32).collect();
        let mut data = orig.clone();
        op.apply_seq(&mut data);
        op.inverse().apply_seq(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn layout_roundtrips(records_base in 1usize..40, fields in 1usize..12, t in 1usize..8) {
        let records = records_base * t; // t must divide records
        let sa = StructArray::new(records, fields);
        let orig: Vec<u32> = (0..sa.len() as u32).collect();
        // AoS -> ASTA -> SoA -> (inverse chain) -> AoS
        let mut data = orig.clone();
        sa.aos_to_asta(t).apply_seq(&mut data);
        sa.asta_to_soa(t).apply_seq(&mut data);
        sa.soa_to_asta(t).apply_seq(&mut data);
        sa.asta_to_aos(t).apply_seq(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn gkk_segments_agree_with_reference(
        (r, c) in (2usize..64, 2usize..64),
        threads in 1usize..9,
        s in 1usize..3,
    ) {
        let p = TransposePerm::new(r, c);
        let orig: Vec<u32> = (0..(r * c * s) as u32).collect();
        let mut want = vec![0u32; orig.len()];
        cycle_shift_oop(&orig, &mut want, &p, s);
        let buckets = ipt::baselines::plan_segments(&p, threads);
        let mut got = orig.clone();
        ipt::baselines::shift_segmented(&mut got, &p, s, &buckets);
        prop_assert_eq!(got, want);
    }
}

proptest! {
    // Device runs are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_device_matches_reference((r, c, m, n) in shape_and_tile()) {
        use ipt::gpu::{plan_flag_words, transpose_on_device, GpuOptions};
        use ipt::sim::{DeviceSpec, Sim};
        let plan = StagePlan::three_stage(r, c, TileConfig::new(m, n)).unwrap();
        let dev = DeviceSpec::tesla_k20();
        let opts = GpuOptions::tuned_for(&dev);
        let mut sim = Sim::new(dev, r * c + plan_flag_words(&plan).max(1) + 64);
        let mut data = Matrix::iota(r, c).into_vec();
        // Internally asserts the result equals the reference permutation.
        let stats = transpose_on_device(&mut sim, &mut data, r, c, &plan, &opts).unwrap();
        prop_assert!(stats.time_s() >= 0.0);
    }
}
