//! Workspace-level integration tests: every execution path — host
//! sequential, host parallel, CPU baselines, and the simulated device —
//! must produce exactly the reference transposition on the same shapes.

use ipt::baselines::{
    transpose_in_place_gkk, transpose_in_place_pipt, transpose_in_place_seq, transpose_oop_par,
};
use ipt::core::{
    transpose_in_place_par, transpose_in_place_seq as core_seq, Algorithm, Matrix, StagePlan,
    TileConfig, TileHeuristic,
};
use ipt::gpu::{plan_flag_words, run_host_async, run_host_sync, transpose_on_device, GpuOptions};
use ipt::sim::{DeviceSpec, Sim};

const SHAPES: &[(usize, usize)] = &[
    (5, 3),
    (3, 5),
    (64, 48),
    (48, 64),
    (100, 100),
    (37, 41), // both prime → single-stage fallback
    (1, 17),
    (17, 1),
    (720, 180),
    (96, 250),
];

#[test]
fn every_host_path_matches_reference() {
    for &(r, c) in SHAPES {
        let m = Matrix::iota(r, c);
        let want = m.transposed();
        for algo in Algorithm::ALL {
            assert_eq!(core_seq(m.clone(), algo), want, "core seq {} {r}x{c}", algo.name());
            assert_eq!(
                transpose_in_place_par(m.clone(), algo),
                want,
                "core par {} {r}x{c}",
                algo.name()
            );
        }
        assert_eq!(transpose_in_place_gkk(m.clone(), 4), want, "gkk {r}x{c}");
        assert_eq!(transpose_in_place_pipt(m.clone()), want, "pipt {r}x{c}");
        assert_eq!(transpose_oop_par(&m), want, "oop {r}x{c}");
        if r * c < 20_000 {
            assert_eq!(transpose_in_place_seq(m.clone()), want, "seq {r}x{c}");
        }
    }
}

#[test]
fn device_paths_match_reference_on_all_devices() {
    let (r, c) = (72, 60);
    let plan = StagePlan::three_stage(r, c, TileConfig::new(12, 10)).unwrap();
    for dev in [
        DeviceSpec::tesla_k20(),
        DeviceSpec::gtx580(),
        DeviceSpec::hd7750(),
        DeviceSpec::xeon_phi(),
    ] {
        let opts = GpuOptions::tuned_for(&dev);
        let name = dev.name;
        let mut sim = Sim::new(dev, r * c + plan_flag_words(&plan) + 64);
        let mut data = Matrix::iota(r, c).into_vec();
        // transpose_on_device panics internally on mismatch.
        let stats = transpose_on_device(&mut sim, &mut data, r, c, &plan, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.time_s() > 0.0, "{name}");
    }
}

#[test]
fn host_offload_sync_and_async_agree() {
    let (r, c) = (720, 180);
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let tile = TileHeuristic::default().select(r, c).unwrap();
    let plan = StagePlan::three_stage(r, c, tile).unwrap();
    // Both runs verify functional correctness internally.
    let sync = run_host_sync(&dev, r, c, &plan, &opts).unwrap();
    for q in [1usize, 2, 4, 8] {
        let asy = run_host_async(&dev, r, c, &plan, &opts, q).unwrap();
        assert!(asy.total_s > 0.0);
        // Async can win or lose depending on Q, but must stay in the same
        // ballpark (no runaway scheduling bug).
        assert!(asy.total_s < 3.0 * sync.total_s, "q={q}");
    }
}

#[test]
fn double_transposition_is_identity_everywhere() {
    for &(r, c) in &[(60, 48), (48, 60), (90, 36)] {
        let m = Matrix::pattern_f32(r, c);
        let t = transpose_in_place_par(m.clone(), Algorithm::ThreeStage);
        let back = transpose_in_place_par(t, Algorithm::FourStage);
        assert_eq!(back, m, "{r}x{c}");
    }
}

#[test]
fn in_place_means_no_matrix_sized_allocation_on_device() {
    // The device-side footprint is the matrix plus coordination bits —
    // under 0.1 % overhead for paper-shaped tiles (§7.4 discussion).
    let (r, c) = (720, 180);
    let tile = TileHeuristic::default().select(r, c).unwrap();
    let plan = StagePlan::three_stage(r, c, tile).unwrap();
    let flag_words = plan_flag_words(&plan);
    let overhead = flag_words as f64 / (r * c) as f64;
    assert!(
        overhead < 0.001,
        "coordination bits {flag_words} words = {:.4}% of the matrix",
        overhead * 100.0
    );
    // And the simulator itself enforces capacity: matrix + flags + slack
    // fits, matrix × 2 is not required.
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let mut sim = Sim::new(dev, r * c + flag_words + 64);
    let mut data = Matrix::iota(r, c).into_vec();
    let _ = transpose_on_device(&mut sim, &mut data, r, c, &plan, &opts).unwrap();
    assert!(sim.free_words() < r * c, "no second matrix-sized buffer existed");
}

#[test]
fn any_shape_api_handles_awkward_dimensions() {
    use ipt::core::transpose_in_place_any;
    for &(r, c) in &[(127, 61), (97, 128), (2 * 53, 2 * 59), (720, 180), (1, 9), (13, 1)] {
        let m = Matrix::iota(r, c);
        assert_eq!(transpose_in_place_any(m.clone()), m.transposed(), "{r}x{c}");
    }
}

#[test]
fn f64_device_path_matches_f32_semantics() {
    use ipt::gpu::{scale_plan_words, transpose_on_device_f64};
    let (r, c) = (48, 90);
    let plan = StagePlan::three_stage(r, c, TileConfig::new(8, 9)).unwrap();
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    let scaled = scale_plan_words(&plan, 2);
    let mut sim = Sim::new(dev, 2 * r * c + plan_flag_words(&scaled) + 64);
    let mut data: Vec<f64> = (0..r * c).map(|k| (k as f64).sin()).collect();
    // Bit-exact verification happens inside.
    let stats = transpose_on_device_f64(&mut sim, &mut data, r, c, &plan, &opts).unwrap();
    assert!(stats.time_s() > 0.0);
}

#[test]
fn multi_gpu_blocks_agree_with_single_device() {
    use ipt::gpu::{run_multi_gpu, LinkTopology};
    let dev = DeviceSpec::tesla_k20();
    let opts = GpuOptions::tuned_for(&dev);
    // run_multi_gpu verifies reassembly internally for every D.
    for d in [1usize, 2, 3, 6] {
        let rep = run_multi_gpu(&dev, d, 720, 180, &opts, LinkTopology::Shared).unwrap();
        assert_eq!(rep.kernel_s_per_device.len(), d);
    }
}

#[test]
fn repro_experiment_smoke() {
    // The tile-size experiment end-to-end: monotone throughput in tile size
    // (the §7.3 shape) via the public harness API.
    use ipt_bench::experiments::tilesize;
    use ipt_bench::workloads::Scale;
    let rows = tilesize::run(&DeviceSpec::tesla_k20(), Scale::Reduced);
    assert_eq!(rows.len(), 4);
    for w in rows.windows(2) {
        assert!(w[1].gbps > w[0].gbps, "§7.3 monotonicity");
    }
}

#[test]
fn dominance_gate_smoke() {
    // The C2R dominance sweep end-to-end: the prime-shape gate must hold
    // (C2R beats coprime on every contested shape, and no planner probe —
    // including the 7919×104729 paper-class shapes — resolves to coprime
    // cycle-following or the single-stage pass).
    use ipt_bench::experiments::dominance;
    use ipt_bench::workloads::Scale;
    let (rows, probes, summary) = dominance::run(&DeviceSpec::tesla_k20(), Scale::Reduced);
    assert!(!rows.is_empty());
    assert!(probes.iter().any(|p| p.rows == 7919 && p.cols == 104_729));
    assert!(summary.passed, "dominance gate failed: {summary:?}");
}
